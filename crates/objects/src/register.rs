//! Atomic read/write registers and register arrays.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

use crate::util::{need_arity, unknown_op, value_arg};

/// A single multi-writer multi-reader atomic register.
///
/// Operations:
///
/// * `read()` → current value;
/// * `write(v)` → `⊥` (stores `v`).
///
/// The consensus number of a register is 1 (Herlihy); registers are the base
/// line of the hierarchy studied by the paper.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::Register;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let r = Register::new();
/// let out = r.apply(&r.initial_state(), &Op::unary("write", Value::Int(9))).unwrap();
/// assert_eq!(out[0].state, Value::Int(9));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Register {
    init: Value,
}

impl Register {
    /// Creates a register initialized to `⊥`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a register with the given initial value.
    pub fn with_initial(init: Value) -> Self {
        Register { init }
    }
}

const REG: &str = "register";

impl ObjectSpec for Register {
    fn type_name(&self) -> &'static str {
        REG
    }

    fn initial_state(&self) -> Value {
        self.init.clone()
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "read" => {
                need_arity(REG, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), state.clone())])
            }
            "write" => {
                need_arity(REG, op, 1)?;
                let v = value_arg(REG, op, 0)?;
                Ok(vec![Outcome::ret(v, Value::Nil)])
            }
            _ => Err(unknown_op(REG, op)),
        }
    }

    fn commutes(&self, _state: &Value, a: &Op, b: &Op) -> bool {
        // Two reads leave the state alone; two writes of the *same* value
        // land in the same state and both respond ⊥. A read/write pair never
        // commutes (the read sees different values in the two orders).
        match (a.name, b.name) {
            ("read", "read") => a.args.is_empty() && b.args.is_empty(),
            ("write", "write") => a.args.len() == 1 && b.args.len() == 1 && a.arg(0) == b.arg(0),
            _ => false,
        }
    }
}

/// An array of `len` atomic registers packaged as one object.
///
/// Operations:
///
/// * `read(i)` → value of cell `i`;
/// * `write(i, v)` → `⊥` (stores `v` into cell `i`).
///
/// Each operation touches exactly one cell, so a register array is
/// observationally equivalent to `len` independent [`Register`]s while
/// keeping systems with many registers small.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::RegisterArray;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let a = RegisterArray::new(3);
/// let s1 = a
///     .apply(&a.initial_state(), &Op::binary("write", Value::Int(1), Value::Sym("x")))
///     .unwrap()
///     .remove(0)
///     .state;
/// let out = a.apply(&s1, &Op::unary("read", Value::Int(1))).unwrap();
/// assert_eq!(out[0].response, Some(Value::Sym("x")));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterArray {
    len: usize,
    init: Value,
}

impl RegisterArray {
    /// Creates an array of `len` registers initialized to `⊥`.
    pub fn new(len: usize) -> Self {
        RegisterArray {
            len,
            init: Value::Nil,
        }
    }

    /// Creates an array of `len` registers initialized to `init`.
    pub fn with_initial(len: usize, init: Value) -> Self {
        RegisterArray { len, init }
    }

    /// Returns the number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

const REG_ARRAY: &str = "register-array";

impl ObjectSpec for RegisterArray {
    fn type_name(&self) -> &'static str {
        REG_ARRAY
    }

    fn initial_state(&self) -> Value {
        Value::Tup(vec![self.init.clone(); self.len])
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let cell = |i: usize| -> Result<(), ObjectError> {
            if i < self.len {
                Ok(())
            } else {
                Err(ObjectError::IllegalOp {
                    object: REG_ARRAY,
                    detail: format!("cell index {i} out of range 0..{}", self.len),
                })
            }
        };
        match op.name {
            "read" => {
                need_arity(REG_ARRAY, op, 1)?;
                let i = crate::util::index_arg(REG_ARRAY, op, 0)?;
                cell(i)?;
                let v = state
                    .index(i)
                    .cloned()
                    .ok_or_else(|| ObjectError::TypeMismatch {
                        object: REG_ARRAY,
                        detail: format!("state {state} is not a tuple of length {}", self.len),
                    })?;
                Ok(vec![Outcome::ret(state.clone(), v)])
            }
            "write" => {
                need_arity(REG_ARRAY, op, 2)?;
                let i = crate::util::index_arg(REG_ARRAY, op, 0)?;
                cell(i)?;
                let v = value_arg(REG_ARRAY, op, 1)?;
                let next = state
                    .with_index(i, v)
                    .ok_or_else(|| ObjectError::TypeMismatch {
                        object: REG_ARRAY,
                        detail: format!("state {state} is not a tuple of length {}", self.len),
                    })?;
                Ok(vec![Outcome::ret(next, Value::Nil)])
            }
            _ => Err(unknown_op(REG_ARRAY, op)),
        }
    }

    fn commutes(&self, _state: &Value, a: &Op, b: &Op) -> bool {
        // Per-cell register semantics: ops on different cells always
        // commute; on the same cell the single-register rule applies.
        // Malformed ops (unknown name, bad arity, non-index cell argument)
        // conservatively never commute.
        let shape = |op: &Op| -> Option<usize> {
            let arity = match op.name {
                "read" => 1,
                "write" => 2,
                _ => return None,
            };
            if op.args.len() != arity {
                return None;
            }
            match op.arg(0) {
                Some(Value::Int(i)) if *i >= 0 && (*i as usize) < self.len => Some(*i as usize),
                _ => None,
            }
        };
        let (Some(ca), Some(cb)) = (shape(a), shape(b)) else {
            return false;
        };
        if ca != cb {
            return true;
        }
        match (a.name, b.name) {
            ("read", "read") => true,
            ("write", "write") => a.arg(1) == b.arg(1),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::audit_determinism;

    #[test]
    fn register_read_write() {
        let r = Register::new();
        let s0 = r.initial_state();
        assert_eq!(s0, Value::Nil);
        let out = r.apply(&s0, &Op::new("read")).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].response, Some(Value::Nil));
        let s1 = r
            .apply(&s0, &Op::unary("write", Value::Int(3)))
            .unwrap()
            .remove(0)
            .state;
        let out = r.apply(&s1, &Op::new("read")).unwrap();
        assert_eq!(out[0].response, Some(Value::Int(3)));
    }

    #[test]
    fn register_with_initial() {
        let r = Register::with_initial(Value::Sym("opened"));
        assert_eq!(r.initial_state(), Value::Sym("opened"));
    }

    #[test]
    fn register_rejects_bad_ops() {
        let r = Register::new();
        let s = r.initial_state();
        assert!(matches!(
            r.apply(&s, &Op::new("cas")),
            Err(ObjectError::UnknownOp { .. })
        ));
        assert!(matches!(
            r.apply(&s, &Op::unary("read", Value::Int(0))),
            Err(ObjectError::BadArity { .. })
        ));
        assert!(matches!(
            r.apply(&s, &Op::new("write")),
            Err(ObjectError::BadArity { .. })
        ));
    }

    #[test]
    fn register_is_deterministic() {
        let r = Register::new();
        let ops = [Op::new("read"), Op::unary("write", Value::Int(1))];
        assert_eq!(audit_determinism(&r, &ops, 4).unwrap(), None);
    }

    #[test]
    fn array_cells_are_independent() {
        let a = RegisterArray::new(3);
        let s0 = a.initial_state();
        let s1 = a
            .apply(&s0, &Op::binary("write", Value::Int(0), Value::Int(10)))
            .unwrap()
            .remove(0)
            .state;
        let s2 = a
            .apply(&s1, &Op::binary("write", Value::Int(2), Value::Int(30)))
            .unwrap()
            .remove(0)
            .state;
        let read = |s: &Value, i: i64| {
            a.apply(s, &Op::unary("read", Value::Int(i)))
                .unwrap()
                .remove(0)
                .response
                .unwrap()
        };
        assert_eq!(read(&s2, 0), Value::Int(10));
        assert_eq!(read(&s2, 1), Value::Nil);
        assert_eq!(read(&s2, 2), Value::Int(30));
    }

    #[test]
    fn array_bounds_checked() {
        let a = RegisterArray::new(2);
        let s = a.initial_state();
        assert!(matches!(
            a.apply(&s, &Op::unary("read", Value::Int(2))),
            Err(ObjectError::IllegalOp { .. })
        ));
        assert!(matches!(
            a.apply(&s, &Op::binary("write", Value::Int(5), Value::Nil)),
            Err(ObjectError::IllegalOp { .. })
        ));
    }

    #[test]
    fn register_commutes_on_reads_and_equal_writes() {
        let r = Register::new();
        let s = r.initial_state();
        let read = Op::new("read");
        let w1 = Op::unary("write", Value::Int(1));
        let w2 = Op::unary("write", Value::Int(2));
        assert!(r.commutes(&s, &read, &read));
        assert!(r.commutes(&s, &w1, &w1.clone()));
        assert!(!r.commutes(&s, &w1, &w2));
        assert!(!r.commutes(&s, &read, &w1));
        assert!(!r.commutes(&s, &w1, &read));
        // Malformed ops never commute.
        assert!(!r.commutes(&s, &Op::unary("read", Value::Int(0)), &read));
        assert!(!r.commutes(&s, &Op::new("cas"), &read));
    }

    #[test]
    fn array_commutes_across_cells() {
        let a = RegisterArray::new(3);
        let s = a.initial_state();
        let r0 = Op::unary("read", Value::Int(0));
        let r1 = Op::unary("read", Value::Int(1));
        let w0 = Op::binary("write", Value::Int(0), Value::Int(7));
        let w0b = Op::binary("write", Value::Int(0), Value::Int(8));
        let w1 = Op::binary("write", Value::Int(1), Value::Int(7));
        // Different cells: anything commutes.
        assert!(a.commutes(&s, &r0, &w1));
        assert!(a.commutes(&s, &w0, &w1));
        // Same cell: the single-register rule.
        assert!(a.commutes(&s, &r0, &r0.clone()));
        assert!(a.commutes(&s, &w0, &w0.clone()));
        assert!(!a.commutes(&s, &w0, &w0b));
        assert!(!a.commutes(&s, &r0, &w0));
        assert!(a.commutes(&s, &r0, &r1), "distinct cells, both reads");
        // Out-of-range or malformed cell arguments never commute.
        let oob = Op::unary("read", Value::Int(9));
        assert!(!a.commutes(&s, &oob, &r0));
        assert!(!a.commutes(&s, &Op::new("read"), &r0));
        assert!(!a.commutes(&s, &Op::unary("read", Value::Sym("x")), &r0));
    }

    #[test]
    fn array_len_accessors() {
        assert_eq!(RegisterArray::new(4).len(), 4);
        assert!(!RegisterArray::new(4).is_empty());
        assert!(RegisterArray::new(0).is_empty());
        let a = RegisterArray::with_initial(2, Value::Int(0));
        assert_eq!(
            a.initial_state(),
            Value::tup([Value::Int(0), Value::Int(0)])
        );
    }
}
