//! Shared argument-validation helpers for object specs.

use subconsensus_sim::{ObjectError, Op, Value};

/// Checks that `op` has exactly `n` arguments.
pub(crate) fn need_arity(object: &'static str, op: &Op, n: usize) -> Result<(), ObjectError> {
    if op.args.len() == n {
        Ok(())
    } else {
        Err(ObjectError::BadArity {
            object,
            op: op.clone(),
            expected: n,
        })
    }
}

/// Extracts argument `i` of `op` as a non-negative index.
pub(crate) fn index_arg(object: &'static str, op: &Op, i: usize) -> Result<usize, ObjectError> {
    op.arg(i)
        .and_then(Value::as_index)
        .ok_or_else(|| ObjectError::TypeMismatch {
            object,
            detail: format!("argument {i} of `{op}` must be a non-negative integer"),
        })
}

/// Extracts argument `i` of `op` as an integer.
pub(crate) fn int_arg(object: &'static str, op: &Op, i: usize) -> Result<i64, ObjectError> {
    op.arg(i)
        .and_then(Value::as_int)
        .ok_or_else(|| ObjectError::TypeMismatch {
            object,
            detail: format!("argument {i} of `{op}` must be an integer"),
        })
}

/// Extracts argument `i` of `op` as an arbitrary value (clone).
pub(crate) fn value_arg(object: &'static str, op: &Op, i: usize) -> Result<Value, ObjectError> {
    op.arg(i).cloned().ok_or_else(|| ObjectError::TypeMismatch {
        object,
        detail: format!("argument {i} of `{op}` is missing"),
    })
}

/// Views `state` as a tuple, failing with a state-corruption error.
pub(crate) fn tup_state<'a>(
    object: &'static str,
    state: &'a Value,
) -> Result<&'a [Value], ObjectError> {
    state.as_tup().ok_or_else(|| ObjectError::TypeMismatch {
        object,
        detail: format!("state {state} is not a tuple"),
    })
}

/// Views `state` as an integer, failing with a state-corruption error.
pub(crate) fn int_state(object: &'static str, state: &Value) -> Result<i64, ObjectError> {
    state.as_int().ok_or_else(|| ObjectError::TypeMismatch {
        object,
        detail: format!("state {state} is not an integer"),
    })
}

/// The standard "unknown operation" rejection.
pub(crate) fn unknown_op(object: &'static str, op: &Op) -> ObjectError {
    ObjectError::UnknownOp {
        object,
        op: op.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_check() {
        let op = Op::unary("f", Value::Int(1));
        assert!(need_arity("t", &op, 1).is_ok());
        assert!(matches!(
            need_arity("t", &op, 2),
            Err(ObjectError::BadArity { expected: 2, .. })
        ));
    }

    #[test]
    fn index_arg_rejects_negative_and_missing() {
        let op = Op::unary("f", Value::Int(-1));
        assert!(index_arg("t", &op, 0).is_err());
        assert!(index_arg("t", &op, 1).is_err());
        let ok = Op::unary("f", Value::Int(2));
        assert_eq!(index_arg("t", &ok, 0).unwrap(), 2);
    }

    #[test]
    fn state_views() {
        assert!(tup_state("t", &Value::Int(1)).is_err());
        assert_eq!(tup_state("t", &Value::tup([])).unwrap().len(), 0);
        assert_eq!(int_state("t", &Value::Int(4)).unwrap(), 4);
        assert!(int_state("t", &Value::Nil).is_err());
    }
}
