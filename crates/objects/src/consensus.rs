//! Consensus objects (sticky registers), bounded and unbounded.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

use crate::util::{need_arity, unknown_op, value_arg};

/// A consensus object: the first proposed value sticks, and every `propose`
/// returns it.
///
/// Operations:
///
/// * `propose(v)` → the winning (first-proposed) value;
/// * `read()` → the winning value, or `⊥` if nobody proposed yet.
///
/// With `capacity = None` the object answers any number of proposals and has
/// **infinite** consensus number (a *sticky register*). With
/// `capacity = Some(n)` it answers only the first `n` proposals — subsequent
/// proposals hang undetectably, exactly like the set-consensus objects of the
/// paper's model section — giving it consensus number `n` in the classical
/// sense: `n` processes each proposing once solve consensus, while in any
/// larger system the adversary can exhaust the object.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::Consensus;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let c = Consensus::unbounded();
/// let s0 = c.initial_state();
/// let first = c.apply(&s0, &Op::unary("propose", Value::Int(7))).unwrap().remove(0);
/// assert_eq!(first.response, Some(Value::Int(7)));
/// let second = c.apply(&first.state, &Op::unary("propose", Value::Int(9))).unwrap().remove(0);
/// assert_eq!(second.response, Some(Value::Int(7)), "the first value sticks");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Consensus {
    capacity: Option<usize>,
}

impl Consensus {
    /// Creates a consensus object answering at most `n` proposals.
    pub fn bounded(n: usize) -> Self {
        Consensus { capacity: Some(n) }
    }

    /// Creates a consensus object answering any number of proposals (a
    /// sticky register; infinite consensus number).
    pub fn unbounded() -> Self {
        Consensus { capacity: None }
    }

    /// Returns the proposal bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

const CONS: &str = "consensus";

impl ObjectSpec for Consensus {
    fn type_name(&self) -> &'static str {
        CONS
    }

    /// State: `(winner, count)` where `winner` is `⊥` until the first
    /// proposal and `count` is the number of proposals so far.
    fn initial_state(&self) -> Value {
        Value::tup([Value::Nil, Value::Int(0)])
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let winner = state
            .index(0)
            .cloned()
            .ok_or_else(|| ObjectError::TypeMismatch {
                object: CONS,
                detail: format!("state {state} is not (winner, count)"),
            })?;
        let count =
            state
                .index(1)
                .and_then(Value::as_index)
                .ok_or_else(|| ObjectError::TypeMismatch {
                    object: CONS,
                    detail: format!("state {state} is not (winner, count)"),
                })?;
        match op.name {
            "propose" => {
                need_arity(CONS, op, 1)?;
                let v = value_arg(CONS, op, 0)?;
                if v.is_nil() {
                    return Err(ObjectError::IllegalOp {
                        object: CONS,
                        detail: "cannot propose ⊥".into(),
                    });
                }
                if self.capacity.is_some_and(|cap| count >= cap) {
                    // Exhausted: hang undetectably. The count keeps
                    // increasing so the state change is visible to the model
                    // checker (but to no process).
                    let next = Value::tup([winner, Value::from(count + 1)]);
                    return Ok(vec![Outcome::hang(next)]);
                }
                let decided = if winner.is_nil() { v } else { winner };
                let next = Value::tup([decided.clone(), Value::from(count + 1)]);
                Ok(vec![Outcome::ret(next, decided)])
            }
            "read" => {
                need_arity(CONS, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), winner)])
            }
            _ => Err(unknown_op(CONS, op)),
        }
    }

    fn commutes(&self, state: &Value, a: &Op, b: &Op) -> bool {
        match (a.name, b.name) {
            // Reads never move the state.
            ("read", "read") => a.args.is_empty() && b.args.is_empty(),
            // Two proposals of the same (legal) value reach the same state
            // and deliver the same responses in either order — except at the
            // capacity boundary, where the order decides *which* caller
            // hangs.
            ("propose", "propose") => {
                let same_value = a.args.len() == 1
                    && b.args.len() == 1
                    && a.arg(0) == b.arg(0)
                    && a.arg(0).is_some_and(|v| !v.is_nil());
                if !same_value {
                    return false;
                }
                match self.capacity {
                    None => true,
                    Some(cap) => match state.index(1).and_then(Value::as_index) {
                        // Both answer, or both hang.
                        Some(count) => count + 2 <= cap || count >= cap,
                        None => false,
                    },
                }
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::audit_determinism;

    fn propose(c: &Consensus, s: &Value, v: i64) -> Outcome {
        c.apply(s, &Op::unary("propose", Value::Int(v)))
            .unwrap()
            .remove(0)
    }

    #[test]
    fn first_value_sticks_forever() {
        let c = Consensus::unbounded();
        let mut s = c.initial_state();
        let o = propose(&c, &s, 5);
        assert_eq!(o.response, Some(Value::Int(5)));
        s = o.state;
        for v in [9, 1, 5, 100] {
            let o = propose(&c, &s, v);
            assert_eq!(o.response, Some(Value::Int(5)));
            s = o.state;
        }
    }

    #[test]
    fn read_observes_winner() {
        let c = Consensus::unbounded();
        let s0 = c.initial_state();
        let r = c.apply(&s0, &Op::new("read")).unwrap().remove(0);
        assert_eq!(r.response, Some(Value::Nil));
        let s1 = propose(&c, &s0, 3).state;
        let r = c.apply(&s1, &Op::new("read")).unwrap().remove(0);
        assert_eq!(r.response, Some(Value::Int(3)));
    }

    #[test]
    fn bounded_object_hangs_after_capacity() {
        let c = Consensus::bounded(2);
        let s0 = c.initial_state();
        let o1 = propose(&c, &s0, 1);
        assert!(!o1.is_hang());
        let o2 = propose(&c, &o1.state, 2);
        assert!(!o2.is_hang());
        assert_eq!(o2.response, Some(Value::Int(1)));
        let o3 = propose(&c, &o2.state, 3);
        assert!(o3.is_hang(), "third proposal on a 2-bounded object hangs");
        let o4 = propose(&c, &o3.state, 4);
        assert!(o4.is_hang(), "and stays hung");
    }

    #[test]
    fn nil_proposal_is_illegal() {
        let c = Consensus::unbounded();
        assert!(matches!(
            c.apply(&c.initial_state(), &Op::unary("propose", Value::Nil)),
            Err(ObjectError::IllegalOp { .. })
        ));
    }

    #[test]
    fn deterministic_audit() {
        let ops = [
            Op::unary("propose", Value::Int(1)),
            Op::unary("propose", Value::Int(2)),
        ];
        assert_eq!(
            audit_determinism(&Consensus::bounded(3), &ops, 5).unwrap(),
            None
        );
    }

    #[test]
    fn commutes_reads_and_equal_proposals_away_from_the_bound() {
        let read = Op::new("read");
        let p1 = Op::unary("propose", Value::Int(1));
        let p2 = Op::unary("propose", Value::Int(2));

        let c = Consensus::unbounded();
        let s0 = c.initial_state();
        assert!(c.commutes(&s0, &read, &read));
        assert!(c.commutes(&s0, &p1, &p1.clone()));
        assert!(!c.commutes(&s0, &p1, &p2), "different values race");
        assert!(!c.commutes(&s0, &read, &p1), "a read sees the order");
        assert!(!c.commutes(&s0, &Op::unary("propose", Value::Nil), &p1));

        // Bounded: equal proposals commute while both fit (count + 2 ≤ cap)
        // or both hang (count ≥ cap), but NOT at the boundary, where the
        // order picks which caller hangs.
        let c = Consensus::bounded(2);
        let s0 = c.initial_state(); // count = 0: both fit
        assert!(c.commutes(&s0, &p1, &p1.clone()));
        let s1 = propose(&c, &s0, 1).state; // count = 1: boundary
        assert!(!c.commutes(&s1, &p1, &p1.clone()));
        let s2 = propose(&c, &s1, 1).state; // count = 2: both hang
        assert!(c.commutes(&s2, &p1, &p1.clone()));
    }

    #[test]
    fn capacity_accessor() {
        assert_eq!(Consensus::bounded(4).capacity(), Some(4));
        assert_eq!(Consensus::unbounded().capacity(), None);
    }
}
