//! An atomic-snapshot object as a primitive.
//!
//! Snapshots are wait-free implementable from registers (Afek et al.), and
//! the `protocols` crate contains such an implementation. This primitive
//! version is convenient when a protocol should be studied *given* snapshots
//! (as in several constructions of the paper's lineage) without paying the
//! state-space cost of the register-level implementation.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

use crate::util::{index_arg, need_arity, unknown_op, value_arg};

/// A single-object atomic snapshot with `len` segments.
///
/// Operations:
///
/// * `update(i, v)` → `⊥` (stores `v` into segment `i`);
/// * `scan()` → a tuple of all segments, atomically.
///
/// Consensus number 1: snapshots are equivalent to registers.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::Snapshot;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let sn = Snapshot::new(2);
/// let s = sn
///     .apply(&sn.initial_state(), &Op::binary("update", Value::Int(0), Value::Int(8)))
///     .unwrap()
///     .remove(0)
///     .state;
/// let out = sn.apply(&s, &Op::new("scan")).unwrap();
/// assert_eq!(out[0].response, Some(Value::tup([Value::Int(8), Value::Nil])));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    len: usize,
}

impl Snapshot {
    /// Creates a snapshot object with `len` segments, all `⊥`.
    pub fn new(len: usize) -> Self {
        Snapshot { len }
    }

    /// Returns the number of segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the snapshot has no segments.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

const SNAP: &str = "snapshot";

impl ObjectSpec for Snapshot {
    fn type_name(&self) -> &'static str {
        SNAP
    }

    fn initial_state(&self) -> Value {
        Value::nil_tup(self.len)
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "update" => {
                need_arity(SNAP, op, 2)?;
                let i = index_arg(SNAP, op, 0)?;
                if i >= self.len {
                    return Err(ObjectError::IllegalOp {
                        object: SNAP,
                        detail: format!("segment index {i} out of range 0..{}", self.len),
                    });
                }
                let v = value_arg(SNAP, op, 1)?;
                let next = state
                    .with_index(i, v)
                    .ok_or_else(|| ObjectError::TypeMismatch {
                        object: SNAP,
                        detail: format!("state {state} is not a tuple of length {}", self.len),
                    })?;
                Ok(vec![Outcome::ret(next, Value::Nil)])
            }
            "scan" => {
                need_arity(SNAP, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), state.clone())])
            }
            _ => Err(unknown_op(SNAP, op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::audit_determinism;

    #[test]
    fn scan_returns_all_segments_atomically() {
        let sn = Snapshot::new(3);
        let mut s = sn.initial_state();
        s = sn
            .apply(&s, &Op::binary("update", Value::Int(1), Value::Sym("a")))
            .unwrap()
            .remove(0)
            .state;
        s = sn
            .apply(&s, &Op::binary("update", Value::Int(2), Value::Sym("b")))
            .unwrap()
            .remove(0)
            .state;
        let out = sn.apply(&s, &Op::new("scan")).unwrap().remove(0);
        assert_eq!(
            out.response,
            Some(Value::tup([Value::Nil, Value::Sym("a"), Value::Sym("b")]))
        );
    }

    #[test]
    fn update_bounds_checked() {
        let sn = Snapshot::new(1);
        assert!(matches!(
            sn.apply(
                &sn.initial_state(),
                &Op::binary("update", Value::Int(1), Value::Nil)
            ),
            Err(ObjectError::IllegalOp { .. })
        ));
    }

    #[test]
    fn deterministic_audit() {
        let sn = Snapshot::new(2);
        let ops = [
            Op::binary("update", Value::Int(0), Value::Int(1)),
            Op::new("scan"),
        ];
        assert_eq!(audit_determinism(&sn, &ops, 3).unwrap(), None);
        assert_eq!(sn.len(), 2);
        assert!(!sn.is_empty());
    }
}
