//! The nondeterministic `(n, k)`-set-consensus object.
//!
//! This is the comparison point of the paper: Borowsky–Gafni's
//! nondeterministic object whose synchronization power is exactly the
//! `k`-set-consensus task for `n` processes. The paper's contribution is a
//! family of **deterministic** objects occupying the same territory; this
//! object is implemented here so that the two can be compared inside one
//! framework.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

use crate::util::{need_arity, unknown_op, value_arg};

/// The `(n, k)`-set-consensus object of Borowsky–Gafni, as specified in the
/// model section of the paper:
///
/// > For all positive integers `k < n`, an `(n, k)`-set consensus
/// > nondeterministic object supports one operation, `propose`, which takes
/// > a single value as input. The value of the object is a set of at most
/// > `k` values, initially empty, and a count of the number of `propose`
/// > operations performed. The first `propose` adds its input to the set.
/// > Any other `propose` can nondeterministically choose to add its input,
/// > provided the set has size less than `k`. Each of the first `n`
/// > `propose` operations nondeterministically returns an element of the
/// > set. All subsequent `propose` operations hang the system in a manner
/// > that cannot be detected by the processes.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::SetConsensus;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let sc = SetConsensus::new(3, 2).unwrap();
/// let outs = sc
///     .apply(&sc.initial_state(), &Op::unary("propose", Value::Int(5)))
///     .unwrap();
/// // First proposal: deterministic in effect, returns the only element.
/// assert_eq!(outs.len(), 1);
/// assert_eq!(outs[0].response, Some(Value::Int(5)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetConsensus {
    n: usize,
    k: usize,
}

/// Error constructing a [`SetConsensus`] with invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidSetConsensusParams {
    /// Requested access bound.
    pub n: usize,
    /// Requested agreement bound.
    pub k: usize,
}

impl std::fmt::Display for InvalidSetConsensusParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(n, k)-set consensus requires 0 < k < n, got (n, k) = ({}, {})",
            self.n, self.k
        )
    }
}

impl std::error::Error for InvalidSetConsensusParams {}

impl SetConsensus {
    /// Creates an `(n, k)`-set-consensus object.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSetConsensusParams`] unless `0 < k < n`.
    pub fn new(n: usize, k: usize) -> Result<Self, InvalidSetConsensusParams> {
        if k == 0 || k >= n {
            return Err(InvalidSetConsensusParams { n, k });
        }
        Ok(SetConsensus { n, k })
    }

    /// Returns the access bound `n`.
    pub fn accesses(&self) -> usize {
        self.n
    }

    /// Returns the agreement bound `k`.
    pub fn agreement(&self) -> usize {
        self.k
    }
}

const SETCONS: &str = "set-consensus";

fn decode(state: &Value) -> Result<(Vec<Value>, usize), ObjectError> {
    let corrupt = || ObjectError::TypeMismatch {
        object: SETCONS,
        detail: format!("state {state} is not (set, count)"),
    };
    let set = state
        .index(0)
        .and_then(Value::as_tup)
        .ok_or_else(corrupt)?
        .to_vec();
    let count = state
        .index(1)
        .and_then(Value::as_index)
        .ok_or_else(corrupt)?;
    Ok((set, count))
}

fn encode(mut set: Vec<Value>, count: usize) -> Value {
    set.sort();
    set.dedup();
    Value::tup([Value::Tup(set), Value::from(count)])
}

impl ObjectSpec for SetConsensus {
    fn type_name(&self) -> &'static str {
        SETCONS
    }

    /// State: `(set, count)` — the (sorted, deduplicated) chosen set and the
    /// number of proposals so far.
    fn initial_state(&self) -> Value {
        encode(Vec::new(), 0)
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        if op.name != "propose" {
            return Err(unknown_op(SETCONS, op));
        }
        need_arity(SETCONS, op, 1)?;
        let v = value_arg(SETCONS, op, 0)?;
        if v.is_nil() {
            return Err(ObjectError::IllegalOp {
                object: SETCONS,
                detail: "cannot propose ⊥".into(),
            });
        }
        let (set, count) = decode(state)?;
        if count >= self.n {
            // Exhausted: hang undetectably.
            return Ok(vec![Outcome::hang(encode(set, count + 1))]);
        }
        let next_count = count + 1;
        let mut outcomes = Vec::new();
        if count == 0 {
            // The first proposal must add its input and (the set being a
            // singleton) returns it.
            let set = vec![v.clone()];
            outcomes.push(Outcome::ret(encode(set, next_count), v));
            return Ok(outcomes);
        }
        // Later proposals: nondeterministically add (if room), then
        // nondeterministically return any element of the resulting set.
        let mut variants: Vec<Vec<Value>> = vec![set.clone()];
        if set.len() < self.k && !set.contains(&v) {
            let mut added = set.clone();
            added.push(v.clone());
            variants.push(added);
        }
        for variant in variants {
            for elem in &variant {
                outcomes.push(Outcome::ret(
                    encode(variant.clone(), next_count),
                    elem.clone(),
                ));
            }
        }
        // Deduplicate identical (state, response) pairs.
        outcomes.sort_by(|a, b| (&a.state, &a.response).cmp(&(&b.state, &b.response)));
        outcomes.dedup();
        Ok(outcomes)
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn propose(sc: &SetConsensus, s: &Value, v: i64) -> Vec<Outcome> {
        sc.apply(s, &Op::unary("propose", Value::Int(v))).unwrap()
    }

    #[test]
    fn parameters_validated() {
        assert!(SetConsensus::new(3, 0).is_err());
        assert!(SetConsensus::new(3, 3).is_err());
        assert!(SetConsensus::new(3, 4).is_err());
        let sc = SetConsensus::new(4, 2).unwrap();
        assert_eq!(sc.accesses(), 4);
        assert_eq!(sc.agreement(), 2);
        let err = SetConsensus::new(2, 2).unwrap_err();
        assert!(err.to_string().contains("(2, 2)"));
    }

    #[test]
    fn first_proposal_is_forced() {
        let sc = SetConsensus::new(3, 2).unwrap();
        let outs = propose(&sc, &sc.initial_state(), 7);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].response, Some(Value::Int(7)));
    }

    #[test]
    fn second_proposal_branches() {
        let sc = SetConsensus::new(3, 2).unwrap();
        let s1 = propose(&sc, &sc.initial_state(), 1).remove(0).state;
        let outs = propose(&sc, &s1, 2);
        // Branches: keep-set {1} → return 1; add → {1,2} → return 1 or 2.
        let responses: Vec<_> = outs.iter().map(|o| o.response.clone().unwrap()).collect();
        assert!(responses.contains(&Value::Int(1)));
        assert!(responses.contains(&Value::Int(2)));
        assert_eq!(outs.len(), 3);
    }

    #[test]
    fn set_never_exceeds_k() {
        let sc = SetConsensus::new(5, 1).unwrap();
        let s1 = propose(&sc, &sc.initial_state(), 1).remove(0).state;
        let outs = propose(&sc, &s1, 2);
        // k = 1: the set is full, so the only branch keeps {1} and returns 1.
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].response, Some(Value::Int(1)));
    }

    #[test]
    fn exhaustion_hangs() {
        let sc = SetConsensus::new(2, 1).unwrap();
        let s1 = propose(&sc, &sc.initial_state(), 1).remove(0).state;
        let s2 = propose(&sc, &s1, 2).remove(0).state;
        let outs = propose(&sc, &s2, 3);
        assert_eq!(outs.len(), 1);
        assert!(outs[0].is_hang());
    }

    #[test]
    fn duplicate_proposals_do_not_grow_the_set() {
        let sc = SetConsensus::new(4, 2).unwrap();
        let s1 = propose(&sc, &sc.initial_state(), 1).remove(0).state;
        let outs = propose(&sc, &s1, 1);
        // Proposing an element already in the set: no "add" branch.
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].response, Some(Value::Int(1)));
    }

    #[test]
    fn declares_nondeterminism() {
        let sc = SetConsensus::new(3, 2).unwrap();
        assert!(!sc.is_deterministic());
        assert!(sc.apply(&sc.initial_state(), &Op::new("read")).is_err());
        assert!(sc
            .apply(&sc.initial_state(), &Op::unary("propose", Value::Nil))
            .is_err());
    }
}
