//! The sink: an object every operation on which hangs.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

/// An object whose every operation hangs the caller undetectably.
///
/// Useful as an explicit "never terminates" exit for protocols that model
/// livelock or divergence inside a *finite* configuration graph: invoking
/// the sink removes the process from the execution without growing the
/// state space, exactly like an exhausted set-consensus object of the
/// paper's model.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::Sink;
/// use subconsensus_sim::{ObjectSpec, Op};
///
/// let s = Sink::new();
/// let outs = s.apply(&s.initial_state(), &Op::new("anything")).unwrap();
/// assert!(outs[0].is_hang());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sink;

impl Sink {
    /// Creates a sink.
    pub fn new() -> Self {
        Sink
    }
}

impl ObjectSpec for Sink {
    fn type_name(&self) -> &'static str {
        "sink"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn apply(&self, state: &Value, _op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        Ok(vec![Outcome::hang(state.clone())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_operation_hangs_and_state_never_changes() {
        let s = Sink::new();
        for name in ["read", "write", "propose"] {
            let outs = s.apply(&s.initial_state(), &Op::new(name)).unwrap();
            assert_eq!(outs.len(), 1);
            assert!(outs[0].is_hang());
            assert_eq!(outs[0].state, Value::Nil);
        }
    }
}
