//! Classic read-modify-write objects: swap, test-and-set, fetch-and-add,
//! compare-and-swap.
//!
//! These are the canonical inhabitants of the consensus hierarchy levels the
//! paper orbits: swap/test-and-set/fetch-and-add have consensus number 2
//! (the *Common2* family); compare-and-swap has infinite consensus number.

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

use crate::util::{int_state, need_arity, unknown_op, value_arg};

/// A swap register: `swap(v)` atomically stores `v` and returns the previous
/// value; `read()` returns the current value.
///
/// Consensus number 2 (Herlihy). Note that for `k = 2` the paper's
/// `WRN₂`-style objects degenerate to exactly this object.
///
/// # Examples
///
/// ```
/// use subconsensus_objects::Swap;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// let sw = Swap::new();
/// let out = sw.apply(&sw.initial_state(), &Op::unary("swap", Value::Int(1))).unwrap();
/// assert_eq!(out[0].response, Some(Value::Nil)); // previous value was ⊥
/// assert_eq!(out[0].state, Value::Int(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Swap {
    init: Value,
}

impl Swap {
    /// Creates a swap register initialized to `⊥`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a swap register with the given initial value.
    pub fn with_initial(init: Value) -> Self {
        Swap { init }
    }
}

const SWAP: &str = "swap";

impl ObjectSpec for Swap {
    fn type_name(&self) -> &'static str {
        SWAP
    }

    fn initial_state(&self) -> Value {
        self.init.clone()
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "swap" => {
                need_arity(SWAP, op, 1)?;
                let v = value_arg(SWAP, op, 0)?;
                Ok(vec![Outcome::ret(v, state.clone())])
            }
            "read" => {
                need_arity(SWAP, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), state.clone())])
            }
            _ => Err(unknown_op(SWAP, op)),
        }
    }
}

/// A one-shot test-and-set bit.
///
/// `test_and_set()` returns `0` to the first caller (the winner) and `1` to
/// everyone else; `read()` returns the current bit. Consensus number 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestAndSet;

impl TestAndSet {
    /// Creates an unset test-and-set bit.
    pub fn new() -> Self {
        TestAndSet
    }
}

const TAS: &str = "test-and-set";

impl ObjectSpec for TestAndSet {
    fn type_name(&self) -> &'static str {
        TAS
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let bit = int_state(TAS, state)?;
        match op.name {
            "test_and_set" => {
                need_arity(TAS, op, 0)?;
                Ok(vec![Outcome::ret(Value::Int(1), Value::Int(bit))])
            }
            "read" => {
                need_arity(TAS, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), Value::Int(bit))])
            }
            _ => Err(unknown_op(TAS, op)),
        }
    }
}

/// A fetch-and-add register: `fetch_add(d)` atomically adds `d` and returns
/// the previous value; `read()` returns the current value.
///
/// Consensus number 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchAdd;

impl FetchAdd {
    /// Creates a fetch-and-add register initialized to 0.
    pub fn new() -> Self {
        FetchAdd
    }
}

const FAA: &str = "fetch-add";

impl ObjectSpec for FetchAdd {
    fn type_name(&self) -> &'static str {
        FAA
    }

    fn initial_state(&self) -> Value {
        Value::Int(0)
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        let n = int_state(FAA, state)?;
        match op.name {
            "fetch_add" => {
                need_arity(FAA, op, 1)?;
                let d = crate::util::int_arg(FAA, op, 0)?;
                Ok(vec![Outcome::ret(Value::Int(n + d), Value::Int(n))])
            }
            "read" => {
                need_arity(FAA, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), Value::Int(n))])
            }
            _ => Err(unknown_op(FAA, op)),
        }
    }
}

/// A compare-and-swap register.
///
/// `cas(expected, new)` atomically installs `new` iff the current value
/// equals `expected`, returning the value observed before the operation;
/// `read()` returns the current value. Infinite consensus number.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompareAndSwap {
    init: Value,
}

impl CompareAndSwap {
    /// Creates a CAS register initialized to `⊥`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a CAS register with the given initial value.
    pub fn with_initial(init: Value) -> Self {
        CompareAndSwap { init }
    }
}

const CAS: &str = "compare-and-swap";

impl ObjectSpec for CompareAndSwap {
    fn type_name(&self) -> &'static str {
        CAS
    }

    fn initial_state(&self) -> Value {
        self.init.clone()
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        match op.name {
            "cas" => {
                need_arity(CAS, op, 2)?;
                let expected = value_arg(CAS, op, 0)?;
                let new = value_arg(CAS, op, 1)?;
                let next = if *state == expected {
                    new
                } else {
                    state.clone()
                };
                Ok(vec![Outcome::ret(next, state.clone())])
            }
            "read" => {
                need_arity(CAS, op, 0)?;
                Ok(vec![Outcome::ret(state.clone(), state.clone())])
            }
            _ => Err(unknown_op(CAS, op)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::audit_determinism;

    #[test]
    fn swap_returns_previous() {
        let sw = Swap::new();
        let s0 = sw.initial_state();
        let o1 = sw
            .apply(&s0, &Op::unary("swap", Value::Int(1)))
            .unwrap()
            .remove(0);
        assert_eq!(o1.response, Some(Value::Nil));
        let o2 = sw
            .apply(&o1.state, &Op::unary("swap", Value::Int(2)))
            .unwrap()
            .remove(0);
        assert_eq!(o2.response, Some(Value::Int(1)));
        assert_eq!(o2.state, Value::Int(2));
    }

    #[test]
    fn tas_has_single_winner() {
        let t = TestAndSet::new();
        let s0 = t.initial_state();
        let o1 = t.apply(&s0, &Op::new("test_and_set")).unwrap().remove(0);
        assert_eq!(o1.response, Some(Value::Int(0)), "first caller wins");
        let o2 = t
            .apply(&o1.state, &Op::new("test_and_set"))
            .unwrap()
            .remove(0);
        assert_eq!(o2.response, Some(Value::Int(1)), "second caller loses");
        let o3 = t
            .apply(&o2.state, &Op::new("test_and_set"))
            .unwrap()
            .remove(0);
        assert_eq!(o3.response, Some(Value::Int(1)));
    }

    #[test]
    fn fetch_add_accumulates() {
        let f = FetchAdd::new();
        let s0 = f.initial_state();
        let o1 = f
            .apply(&s0, &Op::unary("fetch_add", Value::Int(5)))
            .unwrap()
            .remove(0);
        assert_eq!(o1.response, Some(Value::Int(0)));
        let o2 = f
            .apply(&o1.state, &Op::unary("fetch_add", Value::Int(-2)))
            .unwrap()
            .remove(0);
        assert_eq!(o2.response, Some(Value::Int(5)));
        assert_eq!(o2.state, Value::Int(3));
    }

    #[test]
    fn cas_success_and_failure() {
        let c = CompareAndSwap::new();
        let s0 = c.initial_state();
        let win = c
            .apply(&s0, &Op::binary("cas", Value::Nil, Value::Int(1)))
            .unwrap()
            .remove(0);
        assert_eq!(win.response, Some(Value::Nil));
        assert_eq!(win.state, Value::Int(1));
        let lose = c
            .apply(&win.state, &Op::binary("cas", Value::Nil, Value::Int(2)))
            .unwrap()
            .remove(0);
        assert_eq!(
            lose.response,
            Some(Value::Int(1)),
            "loser observes winner's value"
        );
        assert_eq!(
            lose.state,
            Value::Int(1),
            "failed CAS leaves state unchanged"
        );
    }

    #[test]
    fn all_rmw_objects_are_deterministic() {
        assert_eq!(
            audit_determinism(&Swap::new(), &[Op::unary("swap", Value::Int(1))], 3).unwrap(),
            None
        );
        assert_eq!(
            audit_determinism(&TestAndSet::new(), &[Op::new("test_and_set")], 3).unwrap(),
            None
        );
        assert_eq!(
            audit_determinism(
                &FetchAdd::new(),
                &[Op::unary("fetch_add", Value::Int(1))],
                3
            )
            .unwrap(),
            None
        );
        assert_eq!(
            audit_determinism(
                &CompareAndSwap::new(),
                &[Op::binary("cas", Value::Nil, Value::Int(1))],
                3
            )
            .unwrap(),
            None
        );
    }

    #[test]
    fn unknown_ops_rejected() {
        assert!(Swap::new().apply(&Value::Nil, &Op::new("pop")).is_err());
        assert!(TestAndSet::new()
            .apply(&Value::Int(0), &Op::new("reset"))
            .is_err());
        assert!(FetchAdd::new()
            .apply(&Value::Int(0), &Op::new("mul"))
            .is_err());
        assert!(CompareAndSwap::new()
            .apply(&Value::Nil, &Op::new("swap"))
            .is_err());
    }
}
