//! Exhaustive construction of the reachable configuration graph.
//!
//! Exploration is a level-synchronized BFS: each depth level of the graph
//! is expanded *read-only* (optionally across threads), then the results
//! are merged sequentially in ascending node order. Because the merge
//! order is independent of how the level was split, the graph — node
//! indices, edges, terminals — is identical for every thread count.
//!
//! The visited set is a fingerprint index (`u64` hash → candidate node
//! indices) rather than a `HashMap<Config, usize>`: configurations are
//! stored once in the node arena, and every fingerprint hit is verified
//! by full equality before deduplicating, so hash collisions can never
//! merge distinct configurations.
//!
//! # Partial-order reduction
//!
//! With [`ExploreOptions::por`], exploration prunes redundant interleavings
//! of *independent* steps (steps that commute — see
//! [`SystemSpec::footprints_independent`]) instead of generating them and
//! letting the dedup index merge their endpoints:
//!
//! * **Ample (persistent) sets** shrink the state count: at each new
//!   configuration only a persistent subset of the enabled processes is
//!   fired (a deciding process alone, or the smallest statically-closed
//!   conflict component — see `choose_ample`).
//! * **Sleep sets** shrink the edge count: each edge carries the set of
//!   processes whose steps were already explored in a commuting order, so
//!   permutations of one Mazurkiewicz trace are not re-fired.
//! * The **cycle proviso** prevents the ignoring problem: any node found to
//!   close a cycle (an edge to an equal-or-shallower BFS level) is escalated
//!   to full expansion, so no enabled process is deferred forever.
//!
//! The reduced graph preserves the terminal configurations exactly, and with
//! them every verdict in `properties.rs` plus the root valence; it does
//! *not* preserve interior valences, so `find_critical` rejects POR graphs.
//!
//! The frozen graph stores its adjacency in compressed-sparse-row form
//! (`u32` node ids, one flat edge array) — per-node memory is two `u32`
//! offsets instead of a `Vec` header plus allocation slack.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use subconsensus_sim::{Config, Pid, SimError, StepFootprint, SystemSpec};

/// Options bounding an exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Stop after visiting this many distinct configurations.
    pub max_configs: usize,
    /// Worker threads for level expansion (`0` and `1` both mean
    /// sequential). The produced graph is identical for every value.
    pub threads: usize,
    /// Explore the orbit-quotient graph: every successor is canonicalized
    /// under the system's [process symmetry
    /// groups](subconsensus_sim::SystemSpec::symmetry_groups) before dedup,
    /// so only one representative per permutation orbit is visited. A no-op
    /// for systems with trivial symmetry. See
    /// [`StateGraph::explore`] for what the quotient preserves.
    pub symmetry: bool,
    /// Partial-order reduction: prune redundant interleavings of commuting
    /// steps with ample sets + sleep sets + the cycle proviso (see the
    /// module docs). The reduced graph preserves terminal decision sets,
    /// wait-freedom, non-blocking and the root valence; it is rejected by
    /// `find_critical`, which needs full expansion. Composes with
    /// `symmetry` and `threads`.
    pub por: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_configs: 1_000_000,
            threads: 1,
            symmetry: false,
            por: false,
        }
    }
}

impl ExploreOptions {
    /// Options with the given configuration bound.
    pub fn with_max_configs(max_configs: usize) -> Self {
        ExploreOptions {
            max_configs,
            ..Self::default()
        }
    }

    /// Returns these options with the given worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns these options with orbit-quotient exploration on or off.
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Returns these options with partial-order reduction on or off.
    pub fn with_por(mut self, por: bool) -> Self {
        self.por = por;
        self
    }
}

/// Content hash of a configuration, used as the dedup index key.
fn fingerprint(config: &Config) -> u64 {
    let mut h = DefaultHasher::new();
    config.hash(&mut h);
    h.finish()
}

/// Finds `config` among the fingerprint bucket's candidates, verifying by
/// full equality (never trusting the hash alone).
fn lookup(
    index: &HashMap<u64, Vec<usize>>,
    configs: &[Config],
    fp: u64,
    config: &Config,
) -> Option<usize> {
    index
        .get(&fp)?
        .iter()
        .copied()
        .find(|&j| configs[j] == *config)
}

/// Maps a pid bit mask through a pid permutation (`perm[old] = new`).
fn permute_mask(mask: u64, perm: &[usize]) -> u64 {
    let mut out = 0u64;
    let mut it = mask;
    while it != 0 {
        let q = it.trailing_zeros() as usize;
        it &= it - 1;
        out |= 1 << perm[q];
    }
    out
}

/// A successor resolved by a level-expansion worker.
enum StepResult {
    /// The successor already had a node index before this level's merge.
    Existing(usize),
    /// A configuration unseen at expansion time, with its fingerprint;
    /// the merge re-checks it against nodes added earlier in the level.
    Fresh(Config, u64),
}

/// The expansion of one work item: successors in stable (pid, outcome)
/// order, each with the sleep set to install at the successor (all-zero
/// without POR).
struct NodeExpansion {
    steps: Vec<(Pid, StepResult, u64)>,
    /// The pids this item actually fired.
    fired: u64,
    /// Ample candidates suppressed by the sleep set (first visits only).
    slept: u64,
    terminal: bool,
}

/// One unit of frontier work.
///
/// A `fresh` item is a node's first expansion: the worker picks the ample
/// set itself and reads the node's entry sleep set from `first_sleep`. A
/// non-fresh item re-expands an already-visited node with an explicit
/// `fire` mask (sleep-set wake-ups and cycle-proviso escalations).
#[derive(Clone, Copy)]
struct WorkItem {
    node: usize,
    fire: u64,
    sleep: u64,
    fresh: bool,
}

/// Picks a persistent ("ample") subset of the enabled pids of one
/// configuration; only that subset is fired at the node's first visit.
///
/// Soundness requires *persistence*: no step outside the set, nor any
/// future step reachable without the set, may conflict with a step in the
/// set. Two criteria, tried in order:
///
/// 1. **Decide singleton** — an enabled process whose next action is a
///    decision ([`StepFootprint::Local`]) touches only its own (absorbing)
///    process state, so it alone is a persistent set.
/// 2. **Smallest static conflict component** — from the declared
///    whole-execution object footprints
///    ([`SystemSpec::static_independent`]): the enabled pids are split into
///    components closed under "may ever conflict", and the smallest
///    component (ties: the one containing the lowest pid) is taken. A
///    process without a declared footprint conflicts with everyone, which
///    collapses the components into one.
///
/// Falls back to the full enabled set (no reduction). The result is
/// deterministic: it depends only on the configuration and the spec.
fn choose_ample(spec: &SystemSpec, enabled: u64, fps: &[Option<StepFootprint>]) -> u64 {
    let mut it = enabled;
    while it != 0 {
        let i = it.trailing_zeros() as usize;
        it &= it - 1;
        if matches!(fps[i], Some(StepFootprint::Local)) {
            return 1 << i;
        }
    }
    let mut best = enabled;
    let mut remaining = enabled;
    while remaining != 0 {
        let seed = remaining & remaining.wrapping_neg();
        let mut comp = seed;
        loop {
            let mut grown = comp;
            let mut others = enabled & !comp;
            while others != 0 {
                let q = others.trailing_zeros() as usize;
                others &= others - 1;
                if comp & !spec.static_independent(Pid::new(q)) != 0 {
                    grown |= 1 << q;
                }
            }
            if grown == comp {
                break;
            }
            comp = grown;
        }
        if comp.count_ones() < best.count_ones() {
            best = comp;
        }
        remaining &= !comp;
    }
    best
}

/// Expands one work item against a read-only snapshot of the graph.
fn expand_item(
    spec: &SystemSpec,
    configs: &[Config],
    index: &HashMap<u64, Vec<usize>>,
    first_sleep: &[u64],
    item: WorkItem,
    opts: &ExploreOptions,
) -> Result<NodeExpansion, SimError> {
    let config = &configs[item.node];
    let enabled = config.enabled_set().bits();
    if enabled == 0 {
        return Ok(NodeExpansion {
            steps: Vec::new(),
            fired: 0,
            slept: 0,
            terminal: true,
        });
    }

    // Per-pid step footprints: ample selection and successor sleep masks
    // both need them (POR only).
    let mut fps: Vec<Option<StepFootprint>> = Vec::new();
    if opts.por {
        fps = vec![None; config.nprocs()];
        let mut it = enabled;
        while it != 0 {
            let i = it.trailing_zeros() as usize;
            it &= it - 1;
            fps[i] = Some(spec.step_footprint(config, Pid::new(i))?);
        }
    }

    let (fire, sleep, slept) = if !opts.por {
        (enabled, 0, 0)
    } else if item.fresh {
        let sleep = first_sleep[item.node] & enabled;
        let ample = choose_ample(spec, enabled, &fps);
        let mut fire = ample & !sleep;
        let mut slept = ample & sleep;
        if fire == 0 {
            // Never strand a node with enabled processes: un-sleep the
            // lowest ample candidate, so every non-terminal node keeps at
            // least one outgoing edge (`check_nonblocking` depends on it).
            let low = ample & ample.wrapping_neg();
            fire = low;
            slept &= !low;
        }
        (fire, sleep, slept)
    } else {
        (item.fire, item.sleep, 0)
    };

    let mut steps = Vec::new();
    let mut done = 0u64; // earlier siblings fired by this item
    let mut it = fire;
    while it != 0 {
        let i = it.trailing_zeros() as usize;
        it &= it - 1;
        let pid = Pid::new(i);
        // Sleep basis at the successor: the incoming sleep plus this item's
        // earlier siblings, minus the stepping pid — filtered below to the
        // pids whose next step is independent of this one.
        let base = if opts.por {
            (sleep | done) & enabled & !(1 << i)
        } else {
            0
        };
        for (next, _info) in spec.successors(config, pid)? {
            let mut succ_sleep = 0u64;
            if base != 0 {
                let me = fps[i].as_ref().expect("enabled pid has a footprint");
                let mut qs = base;
                while qs != 0 {
                    let q = qs.trailing_zeros() as usize;
                    qs &= qs - 1;
                    let other = fps[q].as_ref().expect("enabled pid has a footprint");
                    if spec.footprints_independent(config, me, other) {
                        succ_sleep |= 1 << q;
                    }
                }
            }
            let next = if opts.symmetry {
                let (canon, perm) = spec.canonicalize_config_perm(next);
                if let Some(perm) = perm {
                    // The canonical successor renames pids; rename the
                    // sleep mask with it.
                    succ_sleep = permute_mask(succ_sleep, &perm);
                }
                canon
            } else {
                next
            };
            let fp = fingerprint(&next);
            let step = match lookup(index, configs, fp, &next) {
                Some(j) => StepResult::Existing(j),
                None => StepResult::Fresh(next, fp),
            };
            steps.push((pid, step, succ_sleep));
        }
        done |= 1 << i;
    }
    Ok(NodeExpansion {
        steps,
        fired: fire,
        slept,
        terminal: false,
    })
}

/// Expands `items` against a read-only snapshot of the graph.
fn expand_chunk(
    spec: &SystemSpec,
    configs: &[Config],
    index: &HashMap<u64, Vec<usize>>,
    first_sleep: &[u64],
    items: &[WorkItem],
    opts: &ExploreOptions,
) -> Result<Vec<NodeExpansion>, SimError> {
    let mut out = Vec::with_capacity(items.len());
    for &item in items {
        out.push(expand_item(spec, configs, index, first_sleep, item, opts)?);
    }
    Ok(out)
}

/// Below this frontier size a level is always expanded sequentially:
/// spawning scoped threads costs more than stepping a handful of nodes,
/// and the merge produces the same graph either way.
const PARALLEL_THRESHOLD: usize = 32;

/// Expands one BFS level, splitting it across `opts.threads` workers.
/// Results are returned in the same order as `level` regardless of the
/// split.
fn expand_level(
    spec: &SystemSpec,
    configs: &[Config],
    index: &HashMap<u64, Vec<usize>>,
    first_sleep: &[u64],
    level: &[WorkItem],
    opts: &ExploreOptions,
) -> Result<Vec<NodeExpansion>, SimError> {
    let threads = opts.threads.clamp(1, level.len().max(1));
    if threads <= 1 || level.len() < PARALLEL_THRESHOLD {
        return expand_chunk(spec, configs, index, first_sleep, level, opts);
    }
    let chunk_size = level.len().div_ceil(threads);
    let results: Vec<Result<Vec<NodeExpansion>, SimError>> = std::thread::scope(|s| {
        let handles: Vec<_> = level
            .chunks(chunk_size)
            .map(|chunk| {
                s.spawn(move || expand_chunk(spec, configs, index, first_sleep, chunk, opts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exploration worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(level.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// One outgoing edge of the configuration graph.
///
/// Node indices are `u32`: the CSR representation caps a graph at
/// `u32::MAX` nodes, far beyond what any exhaustive exploration holds in
/// memory, and halves the edge array's footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The process whose step produced this edge.
    pub pid: Pid,
    /// Index of the successor configuration.
    pub to: u32,
}

impl Edge {
    /// The successor node index widened for direct indexing.
    pub fn target(&self) -> usize {
        self.to as usize
    }
}

/// Summary statistics of a [`StateGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of distinct reachable configurations.
    pub configs: usize,
    /// Total number of edges (steps).
    pub edges: usize,
    /// Number of final configurations.
    pub terminals: usize,
    /// Maximum branching factor of any configuration.
    pub max_out_degree: usize,
    /// Longest shortest-path distance from the initial configuration.
    pub max_depth: usize,
    /// Whether the exploration was truncated.
    pub truncated: bool,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} configs, {} edges, {} terminals, out-degree ≤ {}, depth {}{}",
            self.configs,
            self.edges,
            self.terminals,
            self.max_out_degree,
            self.max_depth,
            if self.truncated { " (TRUNCATED)" } else { "" }
        )
    }
}

/// The reachable configuration graph of a system, with every scheduler choice
/// and every nondeterministic object outcome expanded (unless reduced — see
/// [`StateGraph::is_por_reduced`]).
///
/// Node `0` is the initial configuration. Adjacency is stored in
/// compressed-sparse-row form: `row_ptr[i]..row_ptr[i + 1]` indexes node
/// `i`'s slice of one flat edge array.
#[derive(Clone, Debug)]
pub struct StateGraph {
    configs: Vec<Config>,
    row_ptr: Vec<u32>,
    edge_arr: Vec<Edge>,
    terminals: Vec<usize>,
    truncated: bool,
    por: bool,
}

impl StateGraph {
    /// Exhaustively explores `spec` from its initial configuration,
    /// breadth-first. With `opts.threads > 1` each depth level is expanded
    /// in parallel; the merge order makes the resulting graph identical
    /// node-for-node to the sequential one.
    ///
    /// With `opts.symmetry`, the result is the **orbit-quotient** graph:
    /// every configuration is replaced by the canonical representative of
    /// its orbit under the system's [symmetry
    /// groups](subconsensus_sim::SystemSpec::symmetry_groups) before dedup,
    /// so whole orbits collapse to single nodes. Because within-group
    /// permutations are automorphisms of the full graph, the quotient
    /// preserves reachability of any permutation-closed property —
    /// decided-value sets, bivalence, termination, cycles — which is what
    /// the valency and wait-freedom analyses consume. Edges carry the pid
    /// that stepped *from the representative*, so a
    /// [`witness_schedule`](Self::witness_schedule) drawn from a quotient
    /// graph reaches the predicate only up to a within-group renaming of
    /// processes when replayed against the concrete system.
    ///
    /// With `opts.por`, the result is a **partial-order-reduced** subgraph
    /// (see the module docs): it reaches exactly the same terminal
    /// configurations, preserving the `properties.rs` verdicts and the
    /// root valence, through fewer interior configurations and strictly
    /// fewer redundant interleavings. Interior valences are *not*
    /// preserved, so `find_critical` rejects such graphs. POR composes
    /// with `symmetry` (pruning happens first, canonicalization second)
    /// and with `threads` (all reduction decisions are made in the
    /// sequential merge, so the graph stays thread-count independent).
    ///
    /// If the bound in `opts` is hit, the returned graph is marked
    /// [`truncated`](Self::is_truncated) and all analyses on it are partial.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised while stepping.
    pub fn explore(spec: &SystemSpec, opts: &ExploreOptions) -> Result<Self, SimError> {
        let init = if opts.symmetry {
            spec.canonicalize_config(spec.initial_config())
        } else {
            spec.initial_config()
        };
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        index.entry(fingerprint(&init)).or_default().push(0);
        let mut configs = vec![init];
        // Flat (from, edge) buffer, frozen into CSR at the end.
        let mut edge_buf: Vec<(u32, Edge)> = Vec::new();
        let mut terminals = Vec::new();
        let mut truncated = false;

        // Per-node exploration bookkeeping. `depth` (first-discovery BFS
        // level) doubles as the cycle proviso's back-edge detector; the
        // rest is sleep-set state, all-zero without POR.
        let mut depth: Vec<u32> = vec![0];
        let mut first_sleep: Vec<u64> = vec![0];
        let mut explored: Vec<u64> = vec![0]; // pids fired or enqueued-and-merged
        let mut slept: Vec<u64> = vec![0]; // pids suppressed by sleep sets
        let mut pending: Vec<u64> = vec![0]; // pids enqueued, not yet merged
        let mut expanded: Vec<bool> = vec![false];
        let mut full: Vec<bool> = vec![false]; // escalated by the proviso

        let mut level = vec![WorkItem {
            node: 0,
            fire: 0,
            sleep: 0,
            fresh: true,
        }];
        let mut cur_depth: u32 = 0;
        let mut scratch: Vec<Edge> = Vec::new();
        while !level.is_empty() {
            let expansions = expand_level(spec, &configs, &index, &first_sleep, &level, opts)?;
            let mut next_level: Vec<WorkItem> = Vec::new();
            // POR: edges into already-known nodes; processed only after the
            // whole level has merged, because the target's own expansion may
            // merge later in this same level.
            let mut revisits: Vec<(usize, u64)> = Vec::new();
            for (item, exp) in level.iter().zip(expansions) {
                let i = item.node;
                if exp.terminal {
                    terminals.push(i);
                    expanded[i] = true;
                    continue;
                }
                let mut escalate = false;
                scratch.clear();
                for (pid, step, succ_sleep) in exp.steps {
                    let (j, known) = match step {
                        StepResult::Existing(j) => (j, true),
                        StepResult::Fresh(next, fp) => {
                            // An earlier item of this level may have already
                            // produced the same configuration after the
                            // worker's snapshot; re-check before inserting.
                            match lookup(&index, &configs, fp, &next) {
                                Some(j) => (j, true),
                                None => {
                                    if configs.len() >= opts.max_configs {
                                        truncated = true;
                                        continue;
                                    }
                                    let j = configs.len();
                                    assert!(
                                        j < u32::MAX as usize,
                                        "state graph exceeds u32 node ids"
                                    );
                                    configs.push(next);
                                    index.entry(fp).or_default().push(j);
                                    depth.push(cur_depth + 1);
                                    first_sleep.push(succ_sleep);
                                    explored.push(0);
                                    slept.push(0);
                                    pending.push(0);
                                    expanded.push(false);
                                    full.push(false);
                                    next_level.push(WorkItem {
                                        node: j,
                                        fire: 0,
                                        sleep: 0,
                                        fresh: true,
                                    });
                                    (j, false)
                                }
                            }
                        }
                    };
                    if opts.por && known {
                        revisits.push((j, succ_sleep));
                        // Cycle proviso trigger: an edge into an equal-or-
                        // shallower node can close a cycle. (Deeper targets
                        // — including all fresh nodes — cannot be the
                        // minimal-depth node of a cycle through this edge.)
                        if depth[j] <= depth[i] {
                            escalate = true;
                        }
                    }
                    scratch.push(Edge { pid, to: j as u32 });
                }
                // Canonicalization can map distinct successors of one node
                // onto the same representative; drop the parallel
                // duplicates (the full graph never produces them). One
                // sort+dedup per expansion replaces the old O(deg²)
                // `contains` scan, and per-expansion dedup is per-node
                // dedup: a pid never fires twice for one node, so
                // duplicates cannot span expansions.
                if opts.symmetry {
                    scratch.sort_unstable_by_key(|e| (e.pid.index(), e.to));
                    scratch.dedup();
                }
                edge_buf.extend(scratch.drain(..).map(|e| (i as u32, e)));
                expanded[i] = true;
                explored[i] |= exp.fired;
                pending[i] &= !exp.fired;
                slept[i] = (slept[i] | exp.slept) & !explored[i];
                if opts.por && escalate && !full[i] {
                    // Cycle proviso: fully expand one node per cycle so no
                    // enabled process is ignored around it. Everything not
                    // yet fired or in flight is fired next level, sleep
                    // ignored.
                    full[i] = true;
                    let enabled = configs[i].enabled_set().bits();
                    let rest = enabled & !explored[i] & !pending[i];
                    slept[i] = 0;
                    if rest != 0 {
                        pending[i] |= rest;
                        next_level.push(WorkItem {
                            node: i,
                            fire: rest,
                            sleep: 0,
                            fresh: false,
                        });
                    }
                }
            }
            // Sleep-set revisit rule: reaching a known node along a new
            // path whose sleep set no longer covers a previously-suppressed
            // pid re-fires exactly that pid. Processed after the level's
            // merges so `expanded`/`slept` are final for the level.
            for (j, new_sleep) in revisits {
                if !expanded[j] {
                    // First expansion still queued: shrink the sleep set it
                    // will start from instead.
                    first_sleep[j] &= new_sleep;
                    continue;
                }
                let wake = slept[j] & !new_sleep;
                if wake != 0 {
                    slept[j] &= !wake;
                    pending[j] |= wake;
                    next_level.push(WorkItem {
                        node: j,
                        fire: wake,
                        sleep: new_sleep,
                        fresh: false,
                    });
                }
            }
            level = next_level;
            cur_depth += 1;
        }
        terminals.sort_unstable();
        terminals.dedup();

        // Freeze the edge buffer into CSR: a stable counting sort by source
        // node (edges of one node keep their merge order).
        let n = configs.len();
        assert!(
            edge_buf.len() < u32::MAX as usize,
            "state graph exceeds u32 edge ids"
        );
        let mut row_ptr = vec![0u32; n + 1];
        for &(from, _) in &edge_buf {
            row_ptr[from as usize + 1] += 1;
        }
        for k in 0..n {
            row_ptr[k + 1] += row_ptr[k];
        }
        let mut cursor: Vec<u32> = row_ptr[..n].to_vec();
        let mut edge_arr = vec![
            Edge {
                pid: Pid::new(0),
                to: 0
            };
            edge_buf.len()
        ];
        for (from, e) in edge_buf {
            let c = &mut cursor[from as usize];
            edge_arr[*c as usize] = e;
            *c += 1;
        }

        Ok(StateGraph {
            configs,
            row_ptr,
            edge_arr,
            terminals,
            truncated,
            por: opts.por,
        })
    }

    /// Returns the number of distinct reachable configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if the graph has no configurations (never happens for a
    /// successfully explored system, which always has the initial one).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Returns `true` if the exploration hit its bound.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Returns `true` if this graph was explored with partial-order
    /// reduction ([`ExploreOptions::por`]): a sound *subgraph* of the full
    /// graph that preserves terminals, the `properties.rs` verdicts and the
    /// root valence, but not interior valences (so `find_critical` rejects
    /// it).
    pub fn is_por_reduced(&self) -> bool {
        self.por
    }

    /// Returns the configuration at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn config(&self, index: usize) -> &Config {
        &self.configs[index]
    }

    /// Returns the outgoing edges of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn edges(&self, index: usize) -> &[Edge] {
        let lo = self.row_ptr[index] as usize;
        let hi = self.row_ptr[index + 1] as usize;
        &self.edge_arr[lo..hi]
    }

    /// Returns the indices of the final configurations (no process enabled).
    pub fn terminals(&self) -> &[usize] {
        &self.terminals
    }

    /// Approximate resident bytes of the frozen graph: the configuration
    /// arena (struct plus per-configuration pointer arrays; the `Arc`-shared
    /// object and process states themselves are excluded, as they are
    /// shared across configurations), the CSR arrays and the terminal list.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let per_config = size_of::<Config>()
            + self
                .configs
                .first()
                .map_or(0, |c| (c.nobjects() + c.nprocs()) * size_of::<usize>());
        self.configs.len() * per_config
            + self.row_ptr.len() * size_of::<u32>()
            + self.edge_arr.len() * size_of::<Edge>()
            + self.terminals.len() * size_of::<usize>()
    }

    /// Computes summary statistics of the graph.
    pub fn stats(&self) -> GraphStats {
        use std::collections::VecDeque;
        let n = self.configs.len();
        let max_out_degree = (0..n)
            .map(|i| (self.row_ptr[i + 1] - self.row_ptr[i]) as usize)
            .max()
            .unwrap_or(0);
        // BFS depth from the initial configuration.
        let mut depth = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        depth[0] = 0;
        queue.push_back(0usize);
        let mut max_depth = 0;
        while let Some(i) = queue.pop_front() {
            for e in self.edges(i) {
                if depth[e.target()] == usize::MAX {
                    depth[e.target()] = depth[i] + 1;
                    max_depth = max_depth.max(depth[e.target()]);
                    queue.push_back(e.target());
                }
            }
        }
        GraphStats {
            configs: n,
            edges: self.edge_arr.len(),
            terminals: self.terminals.len(),
            max_out_degree,
            max_depth,
            truncated: self.truncated,
        }
    }

    /// Returns a schedule (sequence of stepping pids) leading from the
    /// initial configuration to the first (BFS-closest) node satisfying
    /// `pred`, or `None` if no reachable configuration satisfies it.
    ///
    /// The returned schedule can be replayed with
    /// [`ReplayScheduler`](subconsensus_sim::ReplayScheduler) to reproduce
    /// the configuration in a normal run — this is how counterexamples
    /// (e.g. a disagreeing consensus schedule) are surfaced to users.
    pub fn witness_schedule<F>(&self, pred: F) -> Option<Vec<Pid>>
    where
        F: Fn(&Config) -> bool,
    {
        use std::collections::VecDeque;
        // parent[i] = (predecessor node, pid that stepped), for BFS tree.
        let mut parent: Vec<Option<(usize, Pid)>> = vec![None; self.configs.len()];
        let mut seen = vec![false; self.configs.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        while let Some(i) = queue.pop_front() {
            if pred(&self.configs[i]) {
                // Reconstruct the schedule back to the root.
                let mut schedule = Vec::new();
                let mut cur = i;
                while let Some((prev, pid)) = parent[cur] {
                    schedule.push(pid);
                    cur = prev;
                }
                schedule.reverse();
                return Some(schedule);
            }
            for e in self.edges(i) {
                if !seen[e.target()] {
                    seen[e.target()] = true;
                    parent[e.target()] = Some((i, e.pid));
                    queue.push_back(e.target());
                }
            }
        }
        None
    }

    /// Returns `true` if the configuration graph contains a directed cycle.
    ///
    /// No cycle means every execution of the system is finite; since a
    /// process that keeps taking steps in a finite acyclic execution space
    /// must reach a decision, acyclicity witnesses wait-freedom for
    /// bounded protocols.
    pub fn has_cycle(&self) -> bool {
        // Iterative three-color DFS.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.configs.len();
        let mut color = vec![WHITE; n];
        for root in 0..n {
            if color[root] != WHITE {
                continue;
            }
            // Stack of (node, next-edge-index).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            while let Some(&mut (node, ref mut ei)) = stack.last_mut() {
                let edges = self.edges(node);
                if *ei < edges.len() {
                    let to = edges[*ei].target();
                    *ei += 1;
                    match color[to] {
                        WHITE => {
                            color[to] = GRAY;
                            stack.push((to, 0));
                        }
                        GRAY => return true,
                        _ => {}
                    }
                } else {
                    color[node] = BLACK;
                    stack.pop();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_sim::{
        Action, ObjId, ObjectError, ObjectSpec, Op, Outcome, ProcCtx, Protocol, ProtocolError,
        SystemBuilder, Value,
    };

    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => Ok(vec![Outcome::ret(
                    op.arg(0).cloned().unwrap_or(Value::Nil),
                    Value::Nil,
                )]),
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// Write your input, read, decide what you read.
    #[derive(Debug)]
    struct WriteReadDecide {
        reg: ObjId,
    }

    impl Protocol for WriteReadDecide {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(Action::invoke(
                    Value::Int(1),
                    self.reg,
                    Op::unary("write", ctx.input.clone()),
                )),
                Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
                _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
            }
        }
    }

    /// Loop forever re-reading.
    #[derive(Debug)]
    struct Spinner {
        reg: ObjId,
    }

    impl Protocol for Spinner {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.reg, Op::new("read")))
        }
    }

    fn race_spec(nprocs: usize) -> subconsensus_sim::SystemSpec {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p = Arc::new(WriteReadDecide { reg });
        for i in 0..nprocs {
            b.add_process(p.clone(), Value::Int(i as i64 + 1));
        }
        b.build()
    }

    /// Two register-backed WriteReadDecide processes per block, each block
    /// on its own register, with declared footprints — the shape POR's
    /// static conflict components reduce.
    fn blocked_spec(blocks: usize) -> subconsensus_sim::SystemSpec {
        #[derive(Debug)]
        struct BlockedWrd {
            reg: ObjId,
        }

        impl Protocol for BlockedWrd {
            fn start(&self, _ctx: &ProcCtx) -> Value {
                Value::Int(0)
            }

            fn step(
                &self,
                ctx: &ProcCtx,
                local: &Value,
                resp: Option<&Value>,
            ) -> Result<Action, ProtocolError> {
                match local.as_int() {
                    Some(0) => Ok(Action::invoke(
                        Value::Int(1),
                        self.reg,
                        Op::unary("write", ctx.input.clone()),
                    )),
                    Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
                    _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
                }
            }

            fn obj_footprint(&self, _ctx: &ProcCtx) -> Option<Vec<ObjId>> {
                Some(vec![self.reg])
            }
        }

        let mut b = SystemBuilder::new();
        for blk in 0..blocks {
            let reg = b.add_object(Reg);
            let p = Arc::new(BlockedWrd { reg });
            for i in 0..2 {
                b.add_process(p.clone(), Value::Int((2 * blk + i) as i64 + 1));
            }
        }
        b.build()
    }

    #[test]
    fn solo_graph_is_a_path() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        assert_eq!(g.len(), 4, "init, wrote, read, decided");
        assert_eq!(g.terminals().len(), 1);
        assert!(!g.has_cycle());
        assert!(!g.is_truncated());
        assert!(!g.is_empty());
        assert!(!g.is_por_reduced());
    }

    #[test]
    fn two_process_race_has_multiple_terminals() {
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        assert!(
            g.terminals().len() > 1,
            "different interleavings end differently"
        );
        assert!(!g.has_cycle());
        // Every terminal has both processes decided on some written value.
        for &t in g.terminals() {
            let decided = g.config(t).decided_values();
            assert!(!decided.is_empty());
            for v in decided {
                assert!(v == Value::Int(1) || v == Value::Int(2));
            }
        }
    }

    #[test]
    fn spinner_produces_a_cycle() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Spinner { reg }), Value::Nil);
        let spec = b.build();
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(g.has_cycle());
        assert!(g.terminals().is_empty());
    }

    #[test]
    fn truncation_is_reported() {
        let g = StateGraph::explore(&race_spec(3), &ExploreOptions::with_max_configs(5)).unwrap();
        assert!(g.is_truncated());
        assert!(g.len() <= 5);
    }

    #[test]
    fn stats_summarize_the_graph() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        let s = g.stats();
        assert_eq!(s.configs, 4);
        assert_eq!(s.edges, 3, "a solo path");
        assert_eq!(s.terminals, 1);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_depth, 3);
        assert!(!s.truncated);
        assert!(s.to_string().contains("4 configs"));

        let g2 = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let s2 = g2.stats();
        assert!(s2.max_out_degree >= 2, "two processes can both step");
        assert_eq!(s2.max_depth, 6, "every full execution takes 6 steps");
    }

    #[test]
    fn approx_bytes_scales_with_the_graph() {
        let small = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        let large = StateGraph::explore(&race_spec(3), &ExploreOptions::default()).unwrap();
        assert!(small.approx_bytes() > 0);
        assert!(large.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn witness_schedule_reaches_and_replays() {
        use subconsensus_sim::{run, FirstOutcome, ReplayScheduler, RunOptions, Value as V};
        let spec = race_spec(2);
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        // Find a terminal where P0 decided 2 (it read P1's later write).
        let schedule = g
            .witness_schedule(|c| c.is_final() && c.decisions()[0] == Some(V::Int(2)))
            .expect("such a schedule exists");
        // Replay it in a normal run and observe the same outcome.
        let mut sched = ReplayScheduler::new(schedule);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        assert_eq!(out.decisions()[0], Some(V::Int(2)));
    }

    #[test]
    fn witness_schedule_for_initial_config_is_empty() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        assert_eq!(g.witness_schedule(|_| true), Some(vec![]));
        assert_eq!(g.witness_schedule(|_| false), None);
    }

    #[test]
    fn edges_record_stepping_pid() {
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let pids: std::collections::HashSet<_> = g.edges(0).iter().map(|e| e.pid).collect();
        assert_eq!(pids.len(), 2, "both processes can step initially");
    }

    #[test]
    fn parallel_exploration_is_node_for_node_identical() {
        let spec = race_spec(3);
        let base = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(base.len() > 100, "a nontrivial graph");
        for threads in [2usize, 3, 4, 8] {
            let opts = ExploreOptions::default().with_threads(threads);
            let g = StateGraph::explore(&spec, &opts).unwrap();
            assert_eq!(g.len(), base.len(), "{threads} threads");
            for i in 0..base.len() {
                assert_eq!(g.config(i), base.config(i), "node {i} at {threads} threads");
                assert_eq!(
                    g.edges(i),
                    base.edges(i),
                    "edges of {i} at {threads} threads"
                );
            }
            assert_eq!(g.terminals(), base.terminals(), "{threads} threads");
            assert_eq!(g.is_truncated(), base.is_truncated());
        }
    }

    #[test]
    fn truncated_parallel_exploration_matches_sequential() {
        let spec = race_spec(3);
        let seq = ExploreOptions::with_max_configs(40);
        let par = ExploreOptions::with_max_configs(40).with_threads(4);
        let a = StateGraph::explore(&spec, &seq).unwrap();
        let b = StateGraph::explore(&spec, &par).unwrap();
        assert!(a.is_truncated() && b.is_truncated());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.config(i), b.config(i));
            assert_eq!(a.edges(i), b.edges(i));
        }
        assert_eq!(a.terminals(), b.terminals());
    }

    /// Sorted terminal configurations, for comparing graphs whose node
    /// numbering differs (full vs POR-reduced).
    fn terminal_configs(g: &StateGraph) -> Vec<Config> {
        let mut t: Vec<Config> = g.terminals().iter().map(|&i| g.config(i).clone()).collect();
        t.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        t
    }

    #[test]
    fn por_preserves_terminals_exactly() {
        for spec in [race_spec(2), race_spec(3), blocked_spec(2)] {
            let full = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
            let red =
                StateGraph::explore(&spec, &ExploreOptions::default().with_por(true)).unwrap();
            assert!(red.is_por_reduced());
            assert!(!red.is_truncated());
            assert!(red.len() <= full.len());
            assert!(red.stats().edges <= full.stats().edges);
            assert_eq!(terminal_configs(&red), terminal_configs(&full));
        }
    }

    #[test]
    fn por_reduces_statically_independent_blocks() {
        // Two 2-process blocks on disjoint registers with declared
        // footprints: the blocks interleave freely in the full graph, but
        // POR serializes them.
        let spec = blocked_spec(2);
        let full = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        let red = StateGraph::explore(&spec, &ExploreOptions::default().with_por(true)).unwrap();
        assert!(
            2 * red.len() <= full.len(),
            "reduced {} vs full {}: expected ≤ 1/2",
            red.len(),
            full.len()
        );
        assert!(red.stats().edges < full.stats().edges);
    }

    #[test]
    fn por_exploration_is_thread_count_independent() {
        let spec = blocked_spec(2);
        let base = StateGraph::explore(&spec, &ExploreOptions::default().with_por(true)).unwrap();
        for threads in [2usize, 4, 8] {
            let opts = ExploreOptions::default()
                .with_por(true)
                .with_threads(threads);
            let g = StateGraph::explore(&spec, &opts).unwrap();
            assert_eq!(g.len(), base.len(), "{threads} threads");
            for i in 0..base.len() {
                assert_eq!(g.config(i), base.config(i), "node {i} at {threads} threads");
                assert_eq!(g.edges(i), base.edges(i), "edges {i} at {threads} threads");
            }
            assert_eq!(g.terminals(), base.terminals());
        }
    }

    #[test]
    fn por_keeps_cycles_detectable() {
        // A spinner (cyclic) plus a decider: the proviso must keep the
        // spin cycle in the reduced graph.
        #[derive(Debug)]
        struct DecideNow;
        impl Protocol for DecideNow {
            fn start(&self, _ctx: &ProcCtx) -> Value {
                Value::Nil
            }
            fn step(
                &self,
                ctx: &ProcCtx,
                _local: &Value,
                _resp: Option<&Value>,
            ) -> Result<Action, ProtocolError> {
                Ok(Action::Decide(ctx.input.clone()))
            }
        }
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Spinner { reg }), Value::Nil);
        b.add_process(Arc::new(DecideNow), Value::Int(1));
        let spec = b.build();
        let full = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        let red = StateGraph::explore(&spec, &ExploreOptions::default().with_por(true)).unwrap();
        assert!(full.has_cycle());
        assert!(red.has_cycle(), "the proviso must not lose the cycle");
        assert_eq!(terminal_configs(&red), terminal_configs(&full));
    }

    #[test]
    fn colliding_fingerprints_never_merge_distinct_configs() {
        // Cram every distinct configuration of a real graph into a single
        // fingerprint bucket (the worst possible hash) and verify lookup
        // still resolves each to exactly itself — dedup relies on full
        // equality, never the fingerprint alone.
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let configs: Vec<Config> = (0..g.len()).map(|i| g.config(i).clone()).collect();
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        index.insert(0, (0..configs.len()).collect());
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(lookup(&index, &configs, 0, c), Some(i));
        }
        // A configuration outside the arena is never claimed found, even
        // when the bucket lists every node.
        let foreign = race_spec(3).initial_config();
        assert_eq!(lookup(&index, &configs, 0, &foreign), None);
    }
}
