//! Exhaustive construction of the reachable configuration graph.
//!
//! Exploration is a level-synchronized BFS: each depth level of the graph
//! is expanded *read-only* (optionally across threads), then the results
//! are merged sequentially in ascending node order. Because the merge
//! order is independent of how the level was split, the graph — node
//! indices, edges, terminals — is identical for every thread count.
//!
//! The visited set is a fingerprint index (`u64` hash → candidate node
//! indices) rather than a `HashMap<Config, usize>`: configurations are
//! stored once in the node arena, and every fingerprint hit is verified
//! by full equality before deduplicating, so hash collisions can never
//! merge distinct configurations.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use subconsensus_sim::{Config, Pid, SimError, SystemSpec};

/// Options bounding an exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Stop after visiting this many distinct configurations.
    pub max_configs: usize,
    /// Worker threads for level expansion (`0` and `1` both mean
    /// sequential). The produced graph is identical for every value.
    pub threads: usize,
    /// Explore the orbit-quotient graph: every successor is canonicalized
    /// under the system's [process symmetry
    /// groups](subconsensus_sim::SystemSpec::symmetry_groups) before dedup,
    /// so only one representative per permutation orbit is visited. A no-op
    /// for systems with trivial symmetry. See
    /// [`StateGraph::explore`] for what the quotient preserves.
    pub symmetry: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_configs: 1_000_000,
            threads: 1,
            symmetry: false,
        }
    }
}

impl ExploreOptions {
    /// Options with the given configuration bound.
    pub fn with_max_configs(max_configs: usize) -> Self {
        ExploreOptions {
            max_configs,
            ..Self::default()
        }
    }

    /// Returns these options with the given worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns these options with orbit-quotient exploration on or off.
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }
}

/// Content hash of a configuration, used as the dedup index key.
fn fingerprint(config: &Config) -> u64 {
    let mut h = DefaultHasher::new();
    config.hash(&mut h);
    h.finish()
}

/// Finds `config` among the fingerprint bucket's candidates, verifying by
/// full equality (never trusting the hash alone).
fn lookup(
    index: &HashMap<u64, Vec<usize>>,
    configs: &[Config],
    fp: u64,
    config: &Config,
) -> Option<usize> {
    index
        .get(&fp)?
        .iter()
        .copied()
        .find(|&j| configs[j] == *config)
}

/// A successor resolved by a level-expansion worker.
enum StepResult {
    /// The successor already had a node index before this level's merge.
    Existing(usize),
    /// A configuration unseen at expansion time, with its fingerprint;
    /// the merge re-checks it against nodes added earlier in the level.
    Fresh(Config, u64),
}

/// The full expansion of one frontier node, successors in stable
/// (pid, outcome) order.
struct NodeExpansion {
    steps: Vec<(Pid, StepResult)>,
    terminal: bool,
}

/// Expands `nodes` against a read-only snapshot of the graph. With
/// `symmetry`, every successor is replaced by its orbit representative
/// before the dedup lookup.
fn expand_chunk(
    spec: &SystemSpec,
    configs: &[Config],
    index: &HashMap<u64, Vec<usize>>,
    nodes: &[usize],
    symmetry: bool,
) -> Result<Vec<NodeExpansion>, SimError> {
    let mut out = Vec::with_capacity(nodes.len());
    for &i in nodes {
        let config = &configs[i];
        let enabled = config.enabled_set();
        if enabled.is_empty() {
            out.push(NodeExpansion {
                steps: Vec::new(),
                terminal: true,
            });
            continue;
        }
        let mut steps = Vec::new();
        for pid in enabled {
            for (next, _info) in spec.successors(config, pid)? {
                let next = if symmetry {
                    spec.canonicalize_config(next)
                } else {
                    next
                };
                let fp = fingerprint(&next);
                let step = match lookup(index, configs, fp, &next) {
                    Some(j) => StepResult::Existing(j),
                    None => StepResult::Fresh(next, fp),
                };
                steps.push((pid, step));
            }
        }
        out.push(NodeExpansion {
            steps,
            terminal: false,
        });
    }
    Ok(out)
}

/// Below this frontier size a level is always expanded sequentially:
/// spawning scoped threads costs more than stepping a handful of nodes,
/// and the merge produces the same graph either way.
const PARALLEL_THRESHOLD: usize = 32;

/// Expands one BFS level, splitting it across `threads` workers. Results
/// are returned in the same order as `level` regardless of the split.
fn expand_level(
    spec: &SystemSpec,
    configs: &[Config],
    index: &HashMap<u64, Vec<usize>>,
    level: &[usize],
    threads: usize,
    symmetry: bool,
) -> Result<Vec<NodeExpansion>, SimError> {
    let threads = threads.clamp(1, level.len().max(1));
    if threads <= 1 || level.len() < PARALLEL_THRESHOLD {
        return expand_chunk(spec, configs, index, level, symmetry);
    }
    let chunk_size = level.len().div_ceil(threads);
    let results: Vec<Result<Vec<NodeExpansion>, SimError>> = std::thread::scope(|s| {
        let handles: Vec<_> = level
            .chunks(chunk_size)
            .map(|chunk| s.spawn(move || expand_chunk(spec, configs, index, chunk, symmetry)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exploration worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(level.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// One outgoing edge of the configuration graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The process whose step produced this edge.
    pub pid: Pid,
    /// Index of the successor configuration.
    pub to: usize,
}

/// Summary statistics of a [`StateGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of distinct reachable configurations.
    pub configs: usize,
    /// Total number of edges (steps).
    pub edges: usize,
    /// Number of final configurations.
    pub terminals: usize,
    /// Maximum branching factor of any configuration.
    pub max_out_degree: usize,
    /// Longest shortest-path distance from the initial configuration.
    pub max_depth: usize,
    /// Whether the exploration was truncated.
    pub truncated: bool,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} configs, {} edges, {} terminals, out-degree ≤ {}, depth {}{}",
            self.configs,
            self.edges,
            self.terminals,
            self.max_out_degree,
            self.max_depth,
            if self.truncated { " (TRUNCATED)" } else { "" }
        )
    }
}

/// The reachable configuration graph of a system, with every scheduler choice
/// and every nondeterministic object outcome expanded.
///
/// Node `0` is the initial configuration.
#[derive(Clone, Debug)]
pub struct StateGraph {
    configs: Vec<Config>,
    edges: Vec<Vec<Edge>>,
    terminals: Vec<usize>,
    truncated: bool,
}

impl StateGraph {
    /// Exhaustively explores `spec` from its initial configuration,
    /// breadth-first. With `opts.threads > 1` each depth level is expanded
    /// in parallel; the merge order makes the resulting graph identical
    /// node-for-node to the sequential one.
    ///
    /// With `opts.symmetry`, the result is the **orbit-quotient** graph:
    /// every configuration is replaced by the canonical representative of
    /// its orbit under the system's [symmetry
    /// groups](subconsensus_sim::SystemSpec::symmetry_groups) before dedup,
    /// so whole orbits collapse to single nodes. Because within-group
    /// permutations are automorphisms of the full graph, the quotient
    /// preserves reachability of any permutation-closed property —
    /// decided-value sets, bivalence, termination, cycles — which is what
    /// the valency and wait-freedom analyses consume. Edges carry the pid
    /// that stepped *from the representative*, so a
    /// [`witness_schedule`](Self::witness_schedule) drawn from a quotient
    /// graph reaches the predicate only up to a within-group renaming of
    /// processes when replayed against the concrete system.
    ///
    /// If the bound in `opts` is hit, the returned graph is marked
    /// [`truncated`](Self::is_truncated) and all analyses on it are partial.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised while stepping.
    pub fn explore(spec: &SystemSpec, opts: &ExploreOptions) -> Result<Self, SimError> {
        let init = if opts.symmetry {
            spec.canonicalize_config(spec.initial_config())
        } else {
            spec.initial_config()
        };
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        index.entry(fingerprint(&init)).or_default().push(0);
        let mut configs = vec![init];
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new()];
        let mut terminals = Vec::new();
        let mut truncated = false;

        let mut level = vec![0usize];
        while !level.is_empty() {
            let expansions =
                expand_level(spec, &configs, &index, &level, opts.threads, opts.symmetry)?;
            let mut next_level = Vec::new();
            for (&i, exp) in level.iter().zip(expansions) {
                if exp.terminal {
                    terminals.push(i);
                    continue;
                }
                for (pid, step) in exp.steps {
                    let j = match step {
                        StepResult::Existing(j) => j,
                        StepResult::Fresh(next, fp) => {
                            // An earlier node of this level may have already
                            // produced the same configuration after the
                            // worker's snapshot; re-check before inserting.
                            match lookup(&index, &configs, fp, &next) {
                                Some(j) => j,
                                None => {
                                    if configs.len() >= opts.max_configs {
                                        truncated = true;
                                        continue;
                                    }
                                    let j = configs.len();
                                    configs.push(next);
                                    index.entry(fp).or_default().push(j);
                                    edges.push(Vec::new());
                                    next_level.push(j);
                                    j
                                }
                            }
                        }
                    };
                    // Canonicalization can map distinct successors of one
                    // node onto the same representative; keep the edge list
                    // parallel-free, as in the full graph.
                    let edge = Edge { pid, to: j };
                    if opts.symmetry && edges[i].contains(&edge) {
                        continue;
                    }
                    edges[i].push(edge);
                }
            }
            level = next_level;
        }
        terminals.sort_unstable();
        Ok(StateGraph {
            configs,
            edges,
            terminals,
            truncated,
        })
    }

    /// Returns the number of distinct reachable configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if the graph has no configurations (never happens for a
    /// successfully explored system, which always has the initial one).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Returns `true` if the exploration hit its bound.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Returns the configuration at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn config(&self, index: usize) -> &Config {
        &self.configs[index]
    }

    /// Returns the outgoing edges of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn edges(&self, index: usize) -> &[Edge] {
        &self.edges[index]
    }

    /// Returns the indices of the final configurations (no process enabled).
    pub fn terminals(&self) -> &[usize] {
        &self.terminals
    }

    /// Computes summary statistics of the graph.
    pub fn stats(&self) -> GraphStats {
        use std::collections::VecDeque;
        let edges_total: usize = self.edges.iter().map(Vec::len).sum();
        let max_out_degree = self.edges.iter().map(Vec::len).max().unwrap_or(0);
        // BFS depth from the initial configuration.
        let mut depth = vec![usize::MAX; self.configs.len()];
        let mut queue = VecDeque::new();
        depth[0] = 0;
        queue.push_back(0usize);
        let mut max_depth = 0;
        while let Some(i) = queue.pop_front() {
            for e in &self.edges[i] {
                if depth[e.to] == usize::MAX {
                    depth[e.to] = depth[i] + 1;
                    max_depth = max_depth.max(depth[e.to]);
                    queue.push_back(e.to);
                }
            }
        }
        GraphStats {
            configs: self.configs.len(),
            edges: edges_total,
            terminals: self.terminals.len(),
            max_out_degree,
            max_depth,
            truncated: self.truncated,
        }
    }

    /// Returns a schedule (sequence of stepping pids) leading from the
    /// initial configuration to the first (BFS-closest) node satisfying
    /// `pred`, or `None` if no reachable configuration satisfies it.
    ///
    /// The returned schedule can be replayed with
    /// [`ReplayScheduler`](subconsensus_sim::ReplayScheduler) to reproduce
    /// the configuration in a normal run — this is how counterexamples
    /// (e.g. a disagreeing consensus schedule) are surfaced to users.
    pub fn witness_schedule<F>(&self, pred: F) -> Option<Vec<Pid>>
    where
        F: Fn(&Config) -> bool,
    {
        use std::collections::VecDeque;
        // parent[i] = (predecessor node, pid that stepped), for BFS tree.
        let mut parent: Vec<Option<(usize, Pid)>> = vec![None; self.configs.len()];
        let mut seen = vec![false; self.configs.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        while let Some(i) = queue.pop_front() {
            if pred(&self.configs[i]) {
                // Reconstruct the schedule back to the root.
                let mut schedule = Vec::new();
                let mut cur = i;
                while let Some((prev, pid)) = parent[cur] {
                    schedule.push(pid);
                    cur = prev;
                }
                schedule.reverse();
                return Some(schedule);
            }
            for e in &self.edges[i] {
                if !seen[e.to] {
                    seen[e.to] = true;
                    parent[e.to] = Some((i, e.pid));
                    queue.push_back(e.to);
                }
            }
        }
        None
    }

    /// Returns `true` if the configuration graph contains a directed cycle.
    ///
    /// No cycle means every execution of the system is finite; since a
    /// process that keeps taking steps in a finite acyclic execution space
    /// must reach a decision, acyclicity witnesses wait-freedom for
    /// bounded protocols.
    pub fn has_cycle(&self) -> bool {
        // Iterative three-color DFS.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.configs.len();
        let mut color = vec![WHITE; n];
        for root in 0..n {
            if color[root] != WHITE {
                continue;
            }
            // Stack of (node, next-edge-index).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            while let Some(&mut (node, ref mut ei)) = stack.last_mut() {
                if *ei < self.edges[node].len() {
                    let to = self.edges[node][*ei].to;
                    *ei += 1;
                    match color[to] {
                        WHITE => {
                            color[to] = GRAY;
                            stack.push((to, 0));
                        }
                        GRAY => return true,
                        _ => {}
                    }
                } else {
                    color[node] = BLACK;
                    stack.pop();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_sim::{
        Action, ObjId, ObjectError, ObjectSpec, Op, Outcome, ProcCtx, Protocol, ProtocolError,
        SystemBuilder, Value,
    };

    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => Ok(vec![Outcome::ret(
                    op.arg(0).cloned().unwrap_or(Value::Nil),
                    Value::Nil,
                )]),
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// Write your input, read, decide what you read.
    #[derive(Debug)]
    struct WriteReadDecide {
        reg: ObjId,
    }

    impl Protocol for WriteReadDecide {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(Action::invoke(
                    Value::Int(1),
                    self.reg,
                    Op::unary("write", ctx.input.clone()),
                )),
                Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
                _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
            }
        }
    }

    /// Loop forever re-reading.
    #[derive(Debug)]
    struct Spinner {
        reg: ObjId,
    }

    impl Protocol for Spinner {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.reg, Op::new("read")))
        }
    }

    fn race_spec(nprocs: usize) -> subconsensus_sim::SystemSpec {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p = Arc::new(WriteReadDecide { reg });
        for i in 0..nprocs {
            b.add_process(p.clone(), Value::Int(i as i64 + 1));
        }
        b.build()
    }

    #[test]
    fn solo_graph_is_a_path() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        assert_eq!(g.len(), 4, "init, wrote, read, decided");
        assert_eq!(g.terminals().len(), 1);
        assert!(!g.has_cycle());
        assert!(!g.is_truncated());
        assert!(!g.is_empty());
    }

    #[test]
    fn two_process_race_has_multiple_terminals() {
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        assert!(
            g.terminals().len() > 1,
            "different interleavings end differently"
        );
        assert!(!g.has_cycle());
        // Every terminal has both processes decided on some written value.
        for &t in g.terminals() {
            let decided = g.config(t).decided_values();
            assert!(!decided.is_empty());
            for v in decided {
                assert!(v == Value::Int(1) || v == Value::Int(2));
            }
        }
    }

    #[test]
    fn spinner_produces_a_cycle() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Spinner { reg }), Value::Nil);
        let spec = b.build();
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(g.has_cycle());
        assert!(g.terminals().is_empty());
    }

    #[test]
    fn truncation_is_reported() {
        let g = StateGraph::explore(&race_spec(3), &ExploreOptions::with_max_configs(5)).unwrap();
        assert!(g.is_truncated());
        assert!(g.len() <= 5);
    }

    #[test]
    fn stats_summarize_the_graph() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        let s = g.stats();
        assert_eq!(s.configs, 4);
        assert_eq!(s.edges, 3, "a solo path");
        assert_eq!(s.terminals, 1);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_depth, 3);
        assert!(!s.truncated);
        assert!(s.to_string().contains("4 configs"));

        let g2 = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let s2 = g2.stats();
        assert!(s2.max_out_degree >= 2, "two processes can both step");
        assert_eq!(s2.max_depth, 6, "every full execution takes 6 steps");
    }

    #[test]
    fn witness_schedule_reaches_and_replays() {
        use subconsensus_sim::{run, FirstOutcome, ReplayScheduler, RunOptions, Value as V};
        let spec = race_spec(2);
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        // Find a terminal where P0 decided 2 (it read P1's later write).
        let schedule = g
            .witness_schedule(|c| c.is_final() && c.decisions()[0] == Some(V::Int(2)))
            .expect("such a schedule exists");
        // Replay it in a normal run and observe the same outcome.
        let mut sched = ReplayScheduler::new(schedule);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        assert_eq!(out.decisions()[0], Some(V::Int(2)));
    }

    #[test]
    fn witness_schedule_for_initial_config_is_empty() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        assert_eq!(g.witness_schedule(|_| true), Some(vec![]));
        assert_eq!(g.witness_schedule(|_| false), None);
    }

    #[test]
    fn edges_record_stepping_pid() {
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let pids: std::collections::HashSet<_> = g.edges(0).iter().map(|e| e.pid).collect();
        assert_eq!(pids.len(), 2, "both processes can step initially");
    }

    #[test]
    fn parallel_exploration_is_node_for_node_identical() {
        let spec = race_spec(3);
        let base = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(base.len() > 100, "a nontrivial graph");
        for threads in [2usize, 3, 4, 8] {
            let opts = ExploreOptions::default().with_threads(threads);
            let g = StateGraph::explore(&spec, &opts).unwrap();
            assert_eq!(g.len(), base.len(), "{threads} threads");
            for i in 0..base.len() {
                assert_eq!(g.config(i), base.config(i), "node {i} at {threads} threads");
                assert_eq!(
                    g.edges(i),
                    base.edges(i),
                    "edges of {i} at {threads} threads"
                );
            }
            assert_eq!(g.terminals(), base.terminals(), "{threads} threads");
            assert_eq!(g.is_truncated(), base.is_truncated());
        }
    }

    #[test]
    fn truncated_parallel_exploration_matches_sequential() {
        let spec = race_spec(3);
        let seq = ExploreOptions::with_max_configs(40);
        let par = ExploreOptions::with_max_configs(40).with_threads(4);
        let a = StateGraph::explore(&spec, &seq).unwrap();
        let b = StateGraph::explore(&spec, &par).unwrap();
        assert!(a.is_truncated() && b.is_truncated());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.config(i), b.config(i));
            assert_eq!(a.edges(i), b.edges(i));
        }
        assert_eq!(a.terminals(), b.terminals());
    }

    #[test]
    fn colliding_fingerprints_never_merge_distinct_configs() {
        // Cram every distinct configuration of a real graph into a single
        // fingerprint bucket (the worst possible hash) and verify lookup
        // still resolves each to exactly itself — dedup relies on full
        // equality, never the fingerprint alone.
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let configs: Vec<Config> = (0..g.len()).map(|i| g.config(i).clone()).collect();
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        index.insert(0, (0..configs.len()).collect());
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(lookup(&index, &configs, 0, c), Some(i));
        }
        // A configuration outside the arena is never claimed found, even
        // when the bucket lists every node.
        let foreign = race_spec(3).initial_config();
        assert_eq!(lookup(&index, &configs, 0, &foreign), None);
    }
}
