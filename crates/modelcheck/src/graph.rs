//! Exhaustive construction of the reachable configuration graph.
//!
//! Exploration is a level-synchronized BFS: each depth level of the graph
//! is expanded *read-only* (optionally across threads), then the results
//! are merged sequentially in ascending node order. Because the merge
//! order is independent of how the level was split, the graph — node
//! indices, edges, terminals — is identical for every thread count.
//!
//! The visited set is a fingerprint index (`u64` hash → candidate node
//! indices) rather than a `HashMap<Config, usize>`: configurations are
//! stored once in the node arena, and every fingerprint hit is verified
//! by full equality before deduplicating, so hash collisions can never
//! merge distinct configurations.
//!
//! By default ([`ExploreOptions::interned`]) the node arena is
//! **hash-consed**: every distinct object and process state is interned
//! once into a [`StateInterner`] and a node is one flat row of `u32` id
//! words, so fingerprint verification is a word compare, stepping copies
//! id rows instead of `Arc` vectors, and per-node memory drops
//! severalfold. Because interning maps equal states to equal ids (and only
//! those), the id-space explorer is node-for-node identical to the deep
//! one — `explore` is generic over the store, and the e6/e10/e11
//! equivalence suites check the two representations against each other.
//!
//! # Partial-order reduction
//!
//! With [`ExploreOptions::por`], exploration prunes redundant interleavings
//! of *independent* steps (steps that commute — see
//! [`SystemSpec::footprints_independent`]) instead of generating them and
//! letting the dedup index merge their endpoints:
//!
//! * **Ample (persistent) sets** shrink the state count: at each new
//!   configuration only a persistent subset of the enabled processes is
//!   fired (a deciding process alone, or the smallest statically-closed
//!   conflict component — see `choose_ample`).
//! * **Sleep sets** shrink the edge count: each edge carries the set of
//!   processes whose steps were already explored in a commuting order, so
//!   permutations of one Mazurkiewicz trace are not re-fired.
//! * The **cycle proviso** prevents the ignoring problem: any node found to
//!   close a cycle (an edge to an equal-or-shallower BFS level) is escalated
//!   to full expansion, so no enabled process is deferred forever.
//!
//! The reduced graph preserves the terminal configurations exactly, and with
//! them every verdict in `properties.rs` plus the root valence; it does
//! *not* preserve interior valences, so `find_critical` rejects POR graphs.
//!
//! The frozen graph stores its adjacency in compressed-sparse-row form
//! (`u32` node ids, one flat edge array) — per-node memory is two `u32`
//! offsets instead of a `Vec` header plus allocation slack.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use subconsensus_sim::{
    git_revision, shard_of_fingerprint, unix_time_ms, warn_once, Config, ExploreMetrics,
    InternerStats, PendingConfig, Pid, ProcStatus, Recorder, RunRecord, SimError, StateInterner,
    StepFootprint, SystemSpec, TruncationCause, Value, WireConfig, ARENA_SEGMENT,
};

use crate::spill::{Spill, DEFAULT_DISK_BUDGET};
use crate::verdict::{ExploreGoal, StreamingVerdict, TerminalFacts, VerdictEngine};

/// Options bounding an exploration.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Stop after visiting this many distinct configurations.
    pub max_configs: usize,
    /// Worker threads for level expansion (`0` and `1` both mean
    /// sequential). The produced graph is identical for every value.
    pub threads: usize,
    /// Explore the orbit-quotient graph: every successor is canonicalized
    /// under the system's [process symmetry
    /// groups](subconsensus_sim::SystemSpec::symmetry_groups) before dedup,
    /// so only one representative per permutation orbit is visited. A no-op
    /// for systems with trivial symmetry. See
    /// [`StateGraph::explore`] for what the quotient preserves.
    pub symmetry: bool,
    /// Partial-order reduction: prune redundant interleavings of commuting
    /// steps with ample sets + sleep sets + the cycle proviso (see the
    /// module docs). The reduced graph preserves terminal decision sets,
    /// wait-freedom, non-blocking and the root valence; it is rejected by
    /// `find_critical`, which needs full expansion. Composes with
    /// `symmetry` and `threads`.
    pub por: bool,
    /// Store configurations hash-consed (the default): object and process
    /// states are interned into per-exploration arenas and every node is a
    /// flat row of `u32` id words, so dedup verification is a word compare
    /// instead of a deep-state traversal and per-node memory shrinks
    /// severalfold. The produced graph is node-for-node identical to the
    /// deep representation; turn this off only to cross-check the two
    /// paths (the e6/e10/e11 equivalence suites do).
    pub interned: bool,
    /// Turn the phase timers of the exploration telemetry on, so the
    /// graph's [`metrics`](StateGraph::metrics) carry a wall-time
    /// breakdown (expand / canonicalize / POR / dedup / merge / freeze).
    /// Counters and per-level records are collected either way; the
    /// explored graph is node-for-node identical with or without this
    /// flag (the recorder is write-only from the explorer's view). The
    /// `MC_PROGRESS` / `MC_TRACE` env vars also force timing on.
    pub metrics: bool,
    /// Shard the exploration Stern–Dill style: the visited set, interner
    /// arena and frontier are partitioned into this many shards by the
    /// *content* fingerprint of each (canonicalized) configuration, so
    /// dedup and merge run per-shard instead of through one sequential
    /// merge. `0` (the default) reads the `MC_SHARDS` env var, falling
    /// back to `1`; `1` is the classic single-store explorer. The
    /// produced graph is node-for-node identical for every value (see
    /// the sharded-exploration section of the module source). With
    /// `shards > 1` the per-level parallelism is one worker per shard;
    /// `threads` only shapes the unsharded explorer.
    pub shards: usize,
    /// What this exploration is for. The default,
    /// [`ExploreGoal::FullGraph`], builds and freezes the whole reachable
    /// graph. [`ExploreGoal::Verdict`] instead accumulates the queried
    /// properties *during* exploration, stops at the end of the first BFS
    /// level where the query is refuted, and skips the freeze +
    /// reverse-CSR phases entirely — the graph then carries a
    /// [`StreamingVerdict`] (see [`StateGraph::verdict`]) but no CSR.
    /// Early exit is at level granularity and the verdict fold is
    /// commutative, so verdicts and explored-config counts stay
    /// deterministic across threads × shards × symmetry × POR × store.
    pub goal: ExploreGoal,
    /// Where the visited set lives: in RAM (the default) or disk-backed
    /// with a bounded hot tier ([`StoreBackend::Disk`]), which spills
    /// cold node rows, interner arena segments and fingerprint-index
    /// entries to a per-run directory once the resident estimate crosses
    /// [`store_budget_bytes`](Self::store_budget_bytes). The produced
    /// graph is node-for-node identical for every backend.
    /// [`StoreBackend::Auto`] defers to the `MC_STORE` env var.
    pub store: StoreBackend,
    /// Hot-tier byte budget. Under [`StoreBackend::Disk`] the store
    /// evicts cold state to disk against this bound; under the in-memory
    /// backend an exploration whose resident estimate crosses it stops
    /// adding configurations and truncates cleanly
    /// ([`TruncationCause::MemoryBudget`]) instead of growing without
    /// bound. `None` defers to the `MC_STORE_BUDGET` env var (bytes),
    /// then — for the disk store only — a 256 MiB default; the in-memory
    /// store is unbounded without an explicit budget.
    pub store_budget_bytes: Option<usize>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_configs: 1_000_000,
            threads: 1,
            symmetry: false,
            por: false,
            interned: true,
            metrics: false,
            shards: 0,
            goal: ExploreGoal::FullGraph,
            store: StoreBackend::Auto,
            store_budget_bytes: None,
        }
    }
}

impl ExploreOptions {
    /// Options with the given configuration bound.
    pub fn with_max_configs(max_configs: usize) -> Self {
        ExploreOptions {
            max_configs,
            ..Self::default()
        }
    }

    /// Returns these options with the given worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns these options with orbit-quotient exploration on or off.
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Returns these options with partial-order reduction on or off.
    pub fn with_por(mut self, por: bool) -> Self {
        self.por = por;
        self
    }

    /// Returns these options with the hash-consed node representation on
    /// or off.
    pub fn with_interned(mut self, interned: bool) -> Self {
        self.interned = interned;
        self
    }

    /// Returns these options with the telemetry phase timers on or off.
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// Returns these options with the given shard count (`0` = read
    /// `MC_SHARDS`, `1` = unsharded).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns these options with the given [`ExploreGoal`].
    pub fn with_goal(mut self, goal: ExploreGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Returns these options with the given [`StoreBackend`].
    pub fn with_store(mut self, store: StoreBackend) -> Self {
        self.store = store;
        self
    }

    /// Returns these options with the given hot-tier byte budget.
    pub fn with_store_budget(mut self, bytes: usize) -> Self {
        self.store_budget_bytes = Some(bytes);
        self
    }

    /// The shard count this exploration will actually run with: an
    /// explicit [`shards`](Self::shards) wins, `0` defers to the
    /// `MC_SHARDS` env var (default `1`), and the result is clamped to
    /// `1..=MAX_SHARDS`.
    fn effective_shards(&self) -> usize {
        let n = if self.shards == 0 {
            std::env::var("MC_SHARDS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(1)
        } else {
            self.shards
        };
        n.clamp(1, MAX_SHARDS)
    }

    /// The store backend this exploration will actually run with: an
    /// explicit [`store`](Self::store) wins, [`StoreBackend::Auto`]
    /// defers to the `MC_STORE` env var (`"disk"` selects the disk
    /// store, anything else the in-memory one).
    fn effective_store(&self) -> StoreBackend {
        match self.store {
            StoreBackend::Auto => match std::env::var("MC_STORE") {
                Ok(v) if v.trim().eq_ignore_ascii_case("disk") => StoreBackend::Disk,
                _ => StoreBackend::Memory,
            },
            explicit => explicit,
        }
    }

    /// The explicit hot-tier budget, if any: a set
    /// [`store_budget_bytes`](Self::store_budget_bytes) wins, `None`
    /// defers to the `MC_STORE_BUDGET` env var.
    fn effective_store_budget(&self) -> Option<usize> {
        self.store_budget_bytes.or_else(|| {
            std::env::var("MC_STORE_BUDGET")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
    }

    /// The options as one JSON object with every env-deferred field
    /// *resolved* (`shards`, `store`, `store_budget_bytes` record what the
    /// exploration actually ran with, not the `0`/`Auto`/`None`
    /// placeholders) — the `options` payload of a run-ledger line.
    pub fn to_json(&self) -> String {
        let goal = match self.goal {
            ExploreGoal::FullGraph => "full_graph",
            ExploreGoal::Verdict(_) => "verdict",
        };
        let store = match self.effective_store() {
            StoreBackend::Disk => "disk",
            StoreBackend::Memory | StoreBackend::Auto => "memory",
        };
        let budget = self
            .effective_store_budget()
            .map_or_else(|| "null".to_string(), |b| b.to_string());
        format!(
            "{{\"max_configs\": {}, \"threads\": {}, \"symmetry\": {}, \
             \"por\": {}, \"interned\": {}, \"metrics\": {}, \"shards\": {}, \
             \"goal\": \"{goal}\", \"store\": \"{store}\", \
             \"store_budget_bytes\": {budget}}}",
            self.max_configs,
            self.threads,
            self.symmetry,
            self.por,
            self.interned,
            self.metrics,
            self.effective_shards()
        )
    }
}

/// Which backend an exploration keeps its visited set in — see
/// [`ExploreOptions::store`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StoreBackend {
    /// Defer to the `MC_STORE` env var (`"disk"` selects
    /// [`Disk`](Self::Disk)), falling back to [`Memory`](Self::Memory).
    #[default]
    Auto,
    /// Everything resident: node rows, interner arenas and the
    /// fingerprint index all live in RAM.
    Memory,
    /// Bounded hot tier: cold node rows, complete interner arena
    /// segments and drained fingerprint-index entries spill to
    /// append-only files under a per-exploration run directory (removed
    /// when the exploration drops), keeping resident bytes near
    /// [`ExploreOptions::store_budget_bytes`]. The produced graph is
    /// node-for-node identical to the in-memory one. Requires the
    /// interned representation; a deep-representation exploration falls
    /// back to memory with a one-shot stderr note.
    Disk,
}

/// Upper bound on the shard count: beyond this, per-shard tables are so
/// sparse that routing overhead dominates, and the per-shard telemetry
/// vectors stop being readable.
const MAX_SHARDS: usize = 64;

/// Content hash of a configuration, used as the dedup index key.
fn fingerprint(config: &Config) -> u64 {
    let mut h = DefaultHasher::new();
    config.hash(&mut h);
    h.finish()
}

/// Finds `config` among the fingerprint bucket's candidates, verifying by
/// full equality (never trusting the hash alone).
fn lookup(
    index: &HashMap<u64, Vec<usize>>,
    configs: &[Config],
    fp: u64,
    config: &Config,
) -> Option<usize> {
    index
        .get(&fp)?
        .iter()
        .copied()
        .find(|&j| configs[j] == *config)
}

/// Content hash of a row of interner id words (the compact dedup key).
fn fingerprint_words(words: &[u32]) -> u64 {
    let mut h = DefaultHasher::new();
    words.hash(&mut h);
    h.finish()
}

/// Maps a pid bit mask through a pid permutation (`perm[old] = new`).
fn permute_mask(mask: u64, perm: &[usize]) -> u64 {
    let mut out = 0u64;
    let mut it = mask;
    while it != 0 {
        let q = it.trailing_zeros() as usize;
        it &= it - 1;
        out |= 1 << perm[q];
    }
    out
}

/// How the sequential merge placed a worker-produced successor.
enum MergeSlot {
    /// Already in the store (possibly inserted earlier in this level).
    Known(usize),
    /// Newly inserted under this node index.
    Added(usize),
    /// Rejected: the store is at the configuration bound.
    Capped,
}

/// The configuration storage and stepping backend of one exploration.
///
/// The explorer itself (`explore_core`) is generic over this trait, so the
/// BFS/POR/symmetry logic is written once and proven equal across the two
/// representations by the equivalence suites:
///
/// * [`DeepStore`] keeps each node as a full [`Config`] and verifies dedup
///   hits by deep equality — the pre-interning representation.
/// * [`CompactStore`] hash-conses states into a [`StateInterner`] and keeps
///   each node as one flat row of `u32` id words; dedup verification is a
///   word compare.
///
/// Workers hold `&self` (both stores are `Sync`; the interner's hit/miss
/// counters are relaxed atomics) and resolve successors against that
/// snapshot; only the sequential merge calls [`ConfigStore::insert`].
trait ConfigStore: Sync {
    /// A successor produced by a worker, not yet (necessarily) stored.
    type Carrier: Send;

    fn spec(&self) -> &SystemSpec;

    /// The telemetry sink of this exploration (shared with the merge
    /// thread; write-only from the explorer's point of view).
    fn recorder(&self) -> &Recorder;

    /// Enabled-process bitset of node `i`.
    fn enabled_bits(&self, i: usize) -> u64;

    /// Footprint of `pid`'s next step at node `i`.
    fn footprint(&self, i: usize, pid: Pid) -> Result<StepFootprint, SimError>;

    /// Whether two steps with these footprints commute at node `i`.
    fn independent(&self, i: usize, a: &StepFootprint, b: &StepFootprint) -> bool;

    /// All successors of stepping `pid` at node `i`, canonicalized when
    /// `symmetry`, each with the pid permutation that canonicalization
    /// applied (`None` when already canonical).
    fn successors(
        &self,
        i: usize,
        pid: Pid,
        symmetry: bool,
    ) -> Result<Successors<Self::Carrier>, SimError>;

    /// Worker-side: finds `c` in this snapshot of the store, if present.
    fn lookup(&self, c: &Self::Carrier) -> Option<usize>;

    /// Merge-side find-or-insert, bounded by `cap` configurations.
    fn insert(&mut self, c: Self::Carrier, cap: usize) -> MergeSlot;

    /// Streaming-verdict facts of terminal node `i` (decided values, hung /
    /// undecided classification) read off the stored representation — no
    /// deep `Config` is materialized.
    fn terminal_facts(&self, i: usize) -> TerminalFacts;

    /// Sequential level-boundary hook, called before each level's
    /// expansion with the node ids about to be expanded (workers are
    /// joined, so a disk-backed store may evict here: everything a worker
    /// can touch this level — the frontier's rows and the arena segments
    /// they reference — is pinned resident until the next call).
    fn begin_level(&mut self, _frontier: &[usize]) {}

    /// Estimated resident bytes of the store's hot tier (rows + arenas +
    /// fingerprint index + reload buffers), driving both the disk store's
    /// eviction and the in-memory budget truncation.
    fn resident_estimate(&self) -> usize {
        0
    }

    /// Whether this store spills cold state to disk (if so, the memory
    /// budget bounds residency by eviction instead of truncation).
    fn spilling(&self) -> bool {
        false
    }
}

/// Rough resident bytes of a fingerprint index: `HashMap` control word +
/// key + `Vec` header per entry, plus one `usize` per filed node id.
fn index_bytes(entries: usize, ids: usize) -> usize {
    entries * 48 + ids * 8
}

/// Folds per-process statuses into the streaming engine's terminal facts —
/// the id-native twin of `Config::decided_values` plus the hung/undecided
/// classification `properties.rs` derives per terminal.
fn facts_from_statuses<'s>(statuses: impl Iterator<Item = &'s ProcStatus>) -> TerminalFacts {
    let mut decided: Vec<Value> = Vec::new();
    let mut any_hung = false;
    let mut all_decided = true;
    for status in statuses {
        match status {
            ProcStatus::Decided(v) => decided.push(v.clone()),
            ProcStatus::Hung => {
                any_hung = true;
                all_decided = false;
            }
            ProcStatus::Fresh | ProcStatus::Running => all_decided = false,
        }
    }
    decided.sort();
    decided.dedup();
    TerminalFacts {
        decided,
        any_hung,
        all_decided,
    }
}

/// Worker-produced successors of one step: each carrier paired with the pid
/// permutation canonicalization applied (`None` when already canonical).
type Successors<C> = Vec<(C, Option<Vec<usize>>)>;

/// Deep-configuration backend: one [`Config`] per node, fingerprint index
/// verified by deep equality.
struct DeepStore<'a> {
    spec: &'a SystemSpec,
    rec: &'a Recorder,
    configs: Vec<Config>,
    index: HashMap<u64, Vec<usize>>,
}

impl<'a> DeepStore<'a> {
    fn new(spec: &'a SystemSpec, rec: &'a Recorder, init: Config) -> Self {
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        index.entry(fingerprint(&init)).or_default().push(0);
        DeepStore {
            spec,
            rec,
            configs: vec![init],
            index,
        }
    }
}

impl ConfigStore for DeepStore<'_> {
    type Carrier = (Config, u64);

    fn spec(&self) -> &SystemSpec {
        self.spec
    }

    fn recorder(&self) -> &Recorder {
        self.rec
    }

    fn enabled_bits(&self, i: usize) -> u64 {
        self.configs[i].enabled_set().bits()
    }

    fn footprint(&self, i: usize, pid: Pid) -> Result<StepFootprint, SimError> {
        self.spec.step_footprint(&self.configs[i], pid)
    }

    fn independent(&self, i: usize, a: &StepFootprint, b: &StepFootprint) -> bool {
        self.spec.footprints_independent(&self.configs[i], a, b)
    }

    fn successors(
        &self,
        i: usize,
        pid: Pid,
        symmetry: bool,
    ) -> Result<Successors<Self::Carrier>, SimError> {
        let mut out = Vec::new();
        let succs = {
            let _t = self.rec.time_expand();
            self.spec.successors(&self.configs[i], pid)?
        };
        for (next, _info) in succs {
            let (next, perm) = if symmetry {
                let _t = self.rec.time_canonicalize();
                self.spec.canonicalize_config_perm(next)
            } else {
                (next, None)
            };
            let fp = {
                let _t = self.rec.time_dedup();
                fingerprint(&next)
            };
            out.push(((next, fp), perm));
        }
        Ok(out)
    }

    fn lookup(&self, (config, fp): &Self::Carrier) -> Option<usize> {
        lookup(&self.index, &self.configs, *fp, config)
    }

    fn insert(&mut self, (config, fp): Self::Carrier, cap: usize) -> MergeSlot {
        // A worker's miss can be this level's earlier insert; re-check.
        if let Some(j) = lookup(&self.index, &self.configs, fp, &config) {
            return MergeSlot::Known(j);
        }
        if self.configs.len() >= cap {
            return MergeSlot::Capped;
        }
        let j = self.configs.len();
        self.configs.push(config);
        self.index.entry(fp).or_default().push(j);
        MergeSlot::Added(j)
    }

    fn terminal_facts(&self, i: usize) -> TerminalFacts {
        let c = &self.configs[i];
        facts_from_statuses((0..c.nprocs()).map(|p| &c.proc_state(Pid::new(p)).status))
    }

    fn resident_estimate(&self) -> usize {
        let per_config = std::mem::size_of::<Config>()
            + self.configs.first().map_or(0, |c| {
                (c.nobjects() + c.nprocs()) * std::mem::size_of::<usize>()
            });
        self.configs.len() * per_config + index_bytes(self.index.len(), self.configs.len())
    }
}

/// A worker-stepped successor in id space: the [`PendingConfig`] plus the
/// fingerprint of its id words when every slot resolved against the
/// worker's interner snapshot (a successor carrying a genuinely fresh
/// state cannot be in the snapshot's visited set, so it needs no
/// fingerprint until the merge interns it).
struct CompactCarrier {
    pending: PendingConfig,
    fp: Option<u64>,
}

/// Hash-consed backend: states live once in a [`StateInterner`], nodes are
/// rows of `u32` id words in one flat array, and dedup verification is a
/// word-for-word compare (sound because interning makes id equality
/// equivalent to state equality).
struct CompactStore<'a> {
    spec: &'a SystemSpec,
    rec: &'a Recorder,
    interner: StateInterner,
    nobjects: usize,
    /// Words per node row (`nobjects + nprocs`).
    stride: usize,
    /// Row-major id words of the *hot* nodes: with no spill, node `i` is
    /// `words[i * stride .. (i + 1) * stride]`; with one, the vec holds
    /// only nodes `[hot_base, len)` (the on-disk prefix is faulted
    /// through the spill's reloaded tier).
    words: Vec<u32>,
    len: usize,
    index: HashMap<u64, Vec<usize>>,
    /// Node ids currently filed in `index` (drains reset it) — keeps
    /// [`resident_estimate`](ConfigStore::resident_estimate) O(1).
    index_ids: usize,
    /// Disk spill state ([`StoreBackend::Disk`] only); `None` preserves
    /// the fully-resident behavior bit for bit.
    spill: Option<Spill>,
}

impl<'a> CompactStore<'a> {
    fn new(spec: &'a SystemSpec, rec: &'a Recorder, init: &Config) -> Self {
        let mut interner = StateInterner::new();
        let compact = interner.intern_config(init);
        let words: Vec<u32> = compact.words().to_vec();
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        index.entry(fingerprint_words(&words)).or_default().push(0);
        CompactStore {
            spec,
            rec,
            interner,
            nobjects: compact.nobjects(),
            stride: words.len(),
            words,
            len: 1,
            index,
            index_ids: 1,
            spill: None,
        }
    }

    /// Turns this store disk-backed with the given hot-tier budget.
    fn enable_spill(&mut self, budget: usize) {
        debug_assert!(self.spill.is_none());
        self.spill = Some(Spill::new(self.stride, budget));
    }

    fn row(&self, i: usize) -> &[u32] {
        self.row_resident(i)
            .expect("spilled row accessed outside the pinned frontier")
    }

    /// Node `i`'s row if it is resident (hot suffix or reloaded this
    /// level) — worker-safe: a `None` is a safe dedup false miss, since
    /// the merge re-checks with faulting.
    fn row_resident(&self, i: usize) -> Option<&[u32]> {
        let hot_base = self.spill.as_ref().map_or(0, Spill::hot_base);
        if i >= hot_base {
            let k = i - hot_base;
            Some(&self.words[k * self.stride..(k + 1) * self.stride])
        } else {
            self.spill.as_ref().and_then(|s| s.reloaded_row(i))
        }
    }

    /// Restores (if evicted) and level-pins one complete arena segment;
    /// tail segments are always resident and never evictable.
    fn restore_and_pin(&mut self, procs: bool, seg: usize) {
        restore_and_pin(&mut self.interner, &mut self.spill, self.rec, procs, seg);
    }

    /// Makes every frontier row and every arena segment those rows
    /// reference resident, pinned for the whole level.
    fn pin_frontier(&mut self, frontier: &[usize]) {
        let rec = self.rec;
        let hot_base = self.spill.as_ref().map_or(0, Spill::hot_base);
        for &i in frontier {
            if i < hot_base {
                self.spill
                    .as_mut()
                    .expect("hot_base > 0 implies a spill")
                    .fault_row(i, rec);
            }
        }
        let mut segs: Vec<(bool, usize)> = Vec::new();
        for &i in frontier {
            let row = self.row(i);
            for (slot, &id) in row.iter().enumerate() {
                segs.push((slot >= self.nobjects, id as usize / ARENA_SEGMENT));
            }
        }
        segs.sort_unstable();
        segs.dedup();
        for (procs, seg) in segs {
            self.restore_and_pin(procs, seg);
        }
    }

    /// Evicts cold state until the resident estimate fits the budget:
    /// complete, unpinned arena segments oldest-pin-first, then (still
    /// over) the in-memory fingerprint index drains to bucket files.
    fn evict_to_budget(&mut self) {
        let rec = self.rec;
        let Some(spill) = self.spill.as_ref() else {
            return;
        };
        let budget = spill.budget;
        let level = spill.level;
        if self.resident_estimate() <= budget {
            return;
        }
        let cands = evictable_segments(&self.interner, self.spill.as_ref().unwrap(), level);
        for (_, procs, seg) in cands {
            if self.resident_estimate() <= budget {
                break;
            }
            evict_segment(
                &mut self.interner,
                self.spill.as_mut().unwrap(),
                rec,
                procs,
                seg,
            );
        }
        if self.resident_estimate() > budget {
            let mut index = std::mem::take(&mut self.index);
            self.spill.as_mut().unwrap().drain_index(&mut index, rec);
            self.index = index;
            self.index_ids = 0;
        }
    }

    /// Restores the arena segments holding cold hash-colliding candidates
    /// of `pending`'s fresh states — `finalize` below requires every such
    /// candidate resident (the interner panics otherwise, because
    /// skipping one would break the id ⇔ value bijection).
    fn restore_cold(&mut self, pending: &PendingConfig) {
        if self.spill.is_none() {
            return;
        }
        let mut cold: Vec<(bool, usize)> = Vec::new();
        self.interner.cold_segments_for_pending(pending, &mut cold);
        for (procs, seg) in cold {
            self.restore_and_pin(procs, seg);
        }
    }

    /// Reconstitutes the fully-resident representation (freeze time):
    /// every evicted segment restored, the on-disk row prefix prepended
    /// back onto the hot vec, the spill (and its run directory) dropped.
    fn unspill(&mut self) {
        unspill(
            &mut self.interner,
            &mut self.spill,
            &mut self.words,
            self.rec,
        );
    }
}

/// Restores (if evicted) and level-pins one complete arena segment —
/// shared by [`CompactStore`] and [`CompactShard`]. A tail (incomplete)
/// segment is always resident and never written, so it is skipped.
fn restore_and_pin(
    interner: &mut StateInterner,
    spill: &mut Option<Spill>,
    rec: &Recorder,
    procs: bool,
    seg: usize,
) {
    let complete = if procs {
        interner.proc_segments()
    } else {
        interner.object_segments()
    };
    if seg >= complete {
        return;
    }
    let resident = if procs {
        interner.proc_segment_resident(seg)
    } else {
        interner.object_segment_resident(seg)
    };
    let spill = spill
        .as_mut()
        .expect("segment pinning implies an active spill");
    if !resident {
        let bytes = spill.read_segment(procs, seg, rec);
        if procs {
            interner.restore_proc_segment(seg, &bytes);
        } else {
            interner.restore_object_segment(seg, &bytes);
        }
    }
    spill.pin_segment(procs, seg);
}

/// Complete, resident arena segments not pinned this level, oldest pin
/// first — the order eviction walks until the budget is met.
fn evictable_segments(
    interner: &StateInterner,
    spill: &Spill,
    level: u64,
) -> Vec<(u64, bool, usize)> {
    let mut cands = Vec::new();
    for seg in 0..interner.object_segments() {
        if interner.object_segment_resident(seg) {
            let pin = spill.obj_pin.get(seg).copied().unwrap_or(0);
            if pin < level {
                cands.push((pin, false, seg));
            }
        }
    }
    for seg in 0..interner.proc_segments() {
        if interner.proc_segment_resident(seg) {
            let pin = spill.proc_pin.get(seg).copied().unwrap_or(0);
            if pin < level {
                cands.push((pin, true, seg));
            }
        }
    }
    cands.sort_unstable();
    cands
}

/// Writes (first eviction only — arena segments are immutable once
/// complete) and evicts one segment, dropping its `Arc`ed states.
fn evict_segment(
    interner: &mut StateInterner,
    spill: &mut Spill,
    rec: &Recorder,
    procs: bool,
    seg: usize,
) {
    if !spill.has_segment(procs, seg) {
        let bytes = if procs {
            interner.encode_proc_segment(seg)
        } else {
            interner.encode_object_segment(seg)
        };
        spill.write_segment(procs, seg, &bytes, rec);
    }
    if procs {
        interner.evict_proc_segment(seg);
    } else {
        interner.evict_object_segment(seg);
    }
}

/// Freeze-time reconstitution shared by both compact stores: every
/// evicted segment restored (bit-exact — the codec round-trips and ids
/// never move), the on-disk row prefix streamed back in front of the hot
/// suffix, and the spill dropped (removing its run directory). The
/// result is indistinguishable from a fully in-memory exploration's.
fn unspill(
    interner: &mut StateInterner,
    spill: &mut Option<Spill>,
    words: &mut Vec<u32>,
    rec: &Recorder,
) {
    let Some(mut spill) = spill.take() else {
        return;
    };
    for seg in 0..interner.object_segments() {
        if !interner.object_segment_resident(seg) {
            let bytes = spill.read_segment(false, seg, rec);
            interner.restore_object_segment(seg, &bytes);
        }
    }
    for seg in 0..interner.proc_segments() {
        if !interner.proc_segment_resident(seg) {
            let bytes = spill.read_segment(true, seg, rec);
            interner.restore_proc_segment(seg, &bytes);
        }
    }
    if spill.hot_base() > 0 {
        let mut all = spill.read_all_rows(rec);
        all.append(words);
        *words = all;
    }
}

impl ConfigStore for CompactStore<'_> {
    type Carrier = CompactCarrier;

    fn spec(&self) -> &SystemSpec {
        self.spec
    }

    fn recorder(&self) -> &Recorder {
        self.rec
    }

    fn enabled_bits(&self, i: usize) -> u64 {
        self.interner.enabled_bits(self.nobjects, self.row(i))
    }

    fn footprint(&self, i: usize, pid: Pid) -> Result<StepFootprint, SimError> {
        self.spec
            .compact_footprint(&self.interner, self.row(i), pid)
    }

    fn independent(&self, i: usize, a: &StepFootprint, b: &StepFootprint) -> bool {
        match (a, b) {
            (StepFootprint::Local, _) | (_, StepFootprint::Local) => true,
            (
                StepFootprint::Object { obj: oa, op: pa },
                StepFootprint::Object { obj: ob, op: pb },
            ) => {
                oa != ob
                    || self.spec.ops_commute(
                        *oa,
                        self.interner.object(self.row(i)[oa.index()]),
                        pa,
                        pb,
                    )
            }
        }
    }

    fn successors(
        &self,
        i: usize,
        pid: Pid,
        symmetry: bool,
    ) -> Result<Successors<Self::Carrier>, SimError> {
        let row = self.row(i);
        let mut out = Vec::new();
        let succs = {
            let _t = self.rec.time_expand();
            self.spec.compact_successors(&self.interner, row, pid)?
        };
        for mut pending in succs {
            let perm = if symmetry {
                let _t = self.rec.time_canonicalize();
                self.spec.compact_canonicalize(&self.interner, &mut pending)
            } else {
                None
            };
            let fp = {
                let _t = self.rec.time_dedup();
                pending.resolved_words().map(fingerprint_words)
            };
            out.push((CompactCarrier { pending, fp }, perm));
        }
        Ok(out)
    }

    fn lookup(&self, c: &Self::Carrier) -> Option<usize> {
        let words = c.pending.resolved_words()?;
        let fp = c.fp?;
        // Worker-side: probe only the in-memory index and only resident
        // rows — a spilled candidate is a safe false miss (fresh state
        // rides by value; the merge's `insert` re-checks with faulting).
        let spilling = self.spill.is_some();
        self.index
            .get(&fp)?
            .iter()
            .copied()
            .find(|&j| match self.row_resident(j) {
                Some(row) => {
                    if spilling {
                        self.rec.count_store_hot_hits(1);
                    }
                    row == words
                }
                None => {
                    self.rec.count_store_hot_misses(1);
                    false
                }
            })
    }

    fn insert(&mut self, c: Self::Carrier, cap: usize) -> MergeSlot {
        // Intern the carrier's fresh states (if any), then dedup by id
        // words — the compact twin of the deep path's re-lookup. With a
        // spill, every cold hash-colliding candidate of the fresh states
        // is restored first: the merge is the authoritative dedup, so
        // unlike the worker's `lookup` it may not skip evicted state.
        self.restore_cold(&c.pending);
        let compact = self.interner.finalize(c.pending);
        let words = compact.words();
        let fp = fingerprint_words(words);
        let mut cands: Vec<usize> = self.index.get(&fp).cloned().unwrap_or_default();
        if let Some(spill) = self.spill.as_mut() {
            if spill.drained {
                spill.spilled_candidates(fp, &mut cands, self.rec);
            }
        }
        let rec = self.rec;
        let spilling = self.spill.is_some();
        let mut known = None;
        for j in cands {
            let hit = match self.row_resident(j) {
                Some(row) => {
                    if spilling {
                        rec.count_store_hot_hits(1);
                    }
                    row == words
                }
                None => {
                    rec.count_store_hot_misses(1);
                    let spill = self
                        .spill
                        .as_mut()
                        .expect("non-resident row implies a spill");
                    spill.fault_row(j, rec) == words
                }
            };
            if hit {
                known = Some(j);
                break;
            }
        }
        if let Some(j) = known {
            return MergeSlot::Known(j);
        }
        if self.len >= cap {
            return MergeSlot::Capped;
        }
        let j = self.len;
        self.words.extend_from_slice(words);
        self.index.entry(fp).or_default().push(j);
        self.index_ids += 1;
        self.len += 1;
        MergeSlot::Added(j)
    }

    fn terminal_facts(&self, i: usize) -> TerminalFacts {
        let row = self.row(i);
        facts_from_statuses(
            row[self.nobjects..]
                .iter()
                .map(|&id| &self.interner.proc(id).status),
        )
    }

    fn begin_level(&mut self, frontier: &[usize]) {
        if self.spill.is_none() {
            return;
        }
        let rec = self.rec;
        {
            let spill = self.spill.as_mut().unwrap();
            spill.level += 1;
            spill.clear_reloaded();
        }
        let budget = self.spill.as_ref().unwrap().budget;
        if self.resident_estimate() > budget {
            // Rows first: the append-only node rows are the dominant
            // linear cost, and spilling them is one sequential write.
            let rows = std::mem::take(&mut self.words);
            self.spill.as_mut().unwrap().spill_rows(&rows, rec);
        }
        self.pin_frontier(frontier);
        self.evict_to_budget();
    }

    fn resident_estimate(&self) -> usize {
        self.interner.table_bytes()
            + self.interner.resident_state_bytes()
            + self.words.len() * std::mem::size_of::<u32>()
            + index_bytes(self.index.len(), self.index_ids)
            + self
                .spill
                .as_ref()
                .map_or(0, |s| s.reloaded_bytes() + s.bucket_cache_bytes())
    }

    fn spilling(&self) -> bool {
        self.spill.is_some()
    }
}

/// A successor resolved by a level-expansion worker.
enum StepResult<C> {
    /// The successor already had a node index before this level's merge.
    Existing(usize),
    /// A carrier unseen at expansion time; the merge re-checks it against
    /// nodes added earlier in the level before inserting.
    Fresh(C),
}

/// The expansion of one work item: successors in stable (pid, outcome)
/// order, each with the sleep set to install at the successor (all-zero
/// without POR).
struct NodeExpansion<C> {
    steps: Vec<(Pid, StepResult<C>, u64)>,
    /// The pids this item actually fired.
    fired: u64,
    /// Ample candidates suppressed by the sleep set (first visits only).
    slept: u64,
    terminal: bool,
}

/// One unit of frontier work.
///
/// A `fresh` item is a node's first expansion: the worker picks the ample
/// set itself and reads the node's entry sleep set from `first_sleep`. A
/// non-fresh item re-expands an already-visited node with an explicit
/// `fire` mask (sleep-set wake-ups and cycle-proviso escalations).
#[derive(Clone, Copy)]
struct WorkItem {
    node: usize,
    fire: u64,
    sleep: u64,
    fresh: bool,
}

/// Picks a persistent ("ample") subset of the enabled pids of one
/// configuration; only that subset is fired at the node's first visit.
///
/// Soundness requires *persistence*: no step outside the set, nor any
/// future step reachable without the set, may conflict with a step in the
/// set. Two criteria, tried in order:
///
/// 1. **Decide singleton** — an enabled process whose next action is a
///    decision ([`StepFootprint::Local`]) touches only its own (absorbing)
///    process state, so it alone is a persistent set.
/// 2. **Smallest static conflict component** — from the declared
///    whole-execution object footprints
///    ([`SystemSpec::static_independent`]): the enabled pids are split into
///    components closed under "may ever conflict", and the smallest
///    component (ties: the one containing the lowest pid) is taken. A
///    process without a declared footprint conflicts with everyone, which
///    collapses the components into one.
///
/// Falls back to the full enabled set (no reduction). The result is
/// deterministic: it depends only on the configuration and the spec.
fn choose_ample(spec: &SystemSpec, enabled: u64, fps: &[Option<StepFootprint>]) -> u64 {
    let mut it = enabled;
    while it != 0 {
        let i = it.trailing_zeros() as usize;
        it &= it - 1;
        if matches!(fps[i], Some(StepFootprint::Local)) {
            return 1 << i;
        }
    }
    let mut best = enabled;
    let mut remaining = enabled;
    while remaining != 0 {
        let seed = remaining & remaining.wrapping_neg();
        let mut comp = seed;
        loop {
            let mut grown = comp;
            let mut others = enabled & !comp;
            while others != 0 {
                let q = others.trailing_zeros() as usize;
                others &= others - 1;
                if comp & !spec.static_independent(Pid::new(q)) != 0 {
                    grown |= 1 << q;
                }
            }
            if grown == comp {
                break;
            }
            comp = grown;
        }
        if comp.count_ones() < best.count_ones() {
            best = comp;
        }
        remaining &= !comp;
    }
    best
}

/// The level-shaped facts a heartbeat reports, frozen at level start so
/// expansion workers can tick the progress sink without touching merge
/// state. Heartbeats fire off the *expansion counter* (every `N`
/// expansions), so ticking inside the expansion loop keeps them coming
/// on a single enormous level — checking only at level boundaries left
/// minutes of silence (the `Recorder`'s CAS claim makes concurrent
/// worker ticks fire once per interval).
#[derive(Clone, Copy)]
struct LevelCtx {
    level: u32,
    nodes: usize,
    frontier: usize,
    remaining: usize,
}

/// Expands one work item against a read-only snapshot of the graph.
fn expand_item<S: ConfigStore>(
    store: &S,
    first_sleep: &[u64],
    item: WorkItem,
    opts: &ExploreOptions,
    ctx: LevelCtx,
) -> Result<NodeExpansion<S::Carrier>, SimError> {
    let rec = store.recorder();
    rec.count_expansions(1);
    rec.heartbeat(ctx.level, ctx.nodes, ctx.frontier, ctx.remaining);
    let node = item.node;
    let enabled = store.enabled_bits(node);
    if enabled == 0 {
        return Ok(NodeExpansion {
            steps: Vec::new(),
            fired: 0,
            slept: 0,
            terminal: true,
        });
    }

    // Per-pid step footprints: ample selection and successor sleep masks
    // both need them (POR only).
    let mut fps: Vec<Option<StepFootprint>> = Vec::new();
    if opts.por {
        let _t = rec.time_por();
        fps = vec![None; store.spec().nprocs()];
        let mut it = enabled;
        while it != 0 {
            let i = it.trailing_zeros() as usize;
            it &= it - 1;
            fps[i] = Some(store.footprint(node, Pid::new(i))?);
        }
    }

    let (fire, sleep, slept) = if !opts.por {
        (enabled, 0, 0)
    } else if item.fresh {
        let _t = rec.time_por();
        let sleep = first_sleep[node] & enabled;
        let ample = choose_ample(store.spec(), enabled, &fps);
        let mut fire = ample & !sleep;
        let mut slept = ample & sleep;
        if fire == 0 {
            // Never strand a node with enabled processes: un-sleep the
            // lowest ample candidate, so every non-terminal node keeps at
            // least one outgoing edge (`check_nonblocking` depends on it).
            let low = ample & ample.wrapping_neg();
            fire = low;
            slept &= !low;
        }
        (fire, sleep, slept)
    } else {
        (item.fire, item.sleep, 0)
    };

    let mut steps = Vec::new();
    let mut done = 0u64; // earlier siblings fired by this item
    let mut it = fire;
    while it != 0 {
        let i = it.trailing_zeros() as usize;
        it &= it - 1;
        let pid = Pid::new(i);
        // Sleep basis at the successor: the incoming sleep plus this item's
        // earlier siblings, minus the stepping pid — filtered below to the
        // pids whose next step is independent of this one.
        let base = if opts.por {
            (sleep | done) & enabled & !(1 << i)
        } else {
            0
        };
        for (next, perm) in store.successors(node, pid, opts.symmetry)? {
            if perm.is_some() {
                rec.count_symmetry_hits(1);
            }
            let mut succ_sleep = 0u64;
            if base != 0 {
                let _t = rec.time_por();
                let me = fps[i].as_ref().expect("enabled pid has a footprint");
                let mut qs = base;
                while qs != 0 {
                    let q = qs.trailing_zeros() as usize;
                    qs &= qs - 1;
                    let other = fps[q].as_ref().expect("enabled pid has a footprint");
                    if store.independent(node, me, other) {
                        succ_sleep |= 1 << q;
                    }
                }
                if let Some(perm) = &perm {
                    // The canonical successor renames pids; rename the
                    // sleep mask with it.
                    succ_sleep = permute_mask(succ_sleep, perm);
                }
            }
            let step = {
                let _t = rec.time_dedup();
                match store.lookup(&next) {
                    Some(j) => StepResult::Existing(j),
                    None => StepResult::Fresh(next),
                }
            };
            steps.push((pid, step, succ_sleep));
        }
        done |= 1 << i;
    }
    rec.count_generated(steps.len() as u64);
    Ok(NodeExpansion {
        steps,
        fired: fire,
        slept,
        terminal: false,
    })
}

/// Expands `items` against a read-only snapshot of the graph.
fn expand_chunk<S: ConfigStore>(
    store: &S,
    first_sleep: &[u64],
    items: &[WorkItem],
    opts: &ExploreOptions,
    ctx: LevelCtx,
) -> Result<Vec<NodeExpansion<S::Carrier>>, SimError> {
    let mut out = Vec::with_capacity(items.len());
    for &item in items {
        out.push(expand_item(store, first_sleep, item, opts, ctx)?);
    }
    Ok(out)
}

/// Below this frontier size a level is always expanded sequentially:
/// spawning scoped threads costs more than stepping a handful of nodes,
/// and the merge produces the same graph either way.
const PARALLEL_THRESHOLD: usize = 32;

/// Hardware threads the host can actually run concurrently (cached; 1 on
/// query failure). Sharded exploration processes shards in-line on a
/// single-core host: the graph is identical either way, spawning only
/// costs, and a shard worker's wall-clock phase timers would otherwise
/// absorb the time it spent descheduled behind its sibling workers.
fn host_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Expands one BFS level, splitting it across `opts.threads` workers.
/// Results are returned in the same order as `level` regardless of the
/// split.
fn expand_level<S: ConfigStore>(
    store: &S,
    first_sleep: &[u64],
    level: &[WorkItem],
    opts: &ExploreOptions,
    ctx: LevelCtx,
) -> Result<Vec<NodeExpansion<S::Carrier>>, SimError> {
    let threads = opts.threads.clamp(1, level.len().max(1));
    if threads <= 1 || level.len() < PARALLEL_THRESHOLD {
        return expand_chunk(store, first_sleep, level, opts, ctx);
    }
    let chunk_size = level.len().div_ceil(threads);
    type ChunkResult<S> = Result<Vec<NodeExpansion<<S as ConfigStore>::Carrier>>, SimError>;
    let results: Vec<ChunkResult<S>> = std::thread::scope(|s| {
        let handles: Vec<_> = level
            .chunks(chunk_size)
            .map(|chunk| s.spawn(move || expand_chunk(store, first_sleep, chunk, opts, ctx)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exploration worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(level.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// One outgoing edge of the configuration graph.
///
/// Node indices are `u32`: the CSR representation caps a graph at
/// `u32::MAX` nodes, far beyond what any exhaustive exploration holds in
/// memory, and halves the edge array's footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The process whose step produced this edge.
    pub pid: Pid,
    /// Index of the successor configuration.
    pub to: u32,
}

impl Edge {
    /// The successor node index widened for direct indexing.
    pub fn target(&self) -> usize {
        self.to as usize
    }
}

/// Summary statistics of a [`StateGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of distinct reachable configurations.
    pub configs: usize,
    /// Total number of edges (steps).
    pub edges: usize,
    /// Number of final configurations.
    pub terminals: usize,
    /// Maximum branching factor of any configuration.
    pub max_out_degree: usize,
    /// Longest shortest-path distance from the initial configuration.
    pub max_depth: usize,
    /// Whether the exploration was truncated.
    pub truncated: bool,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} configs, {} edges, {} terminals, out-degree ≤ {}, depth {}{}",
            self.configs,
            self.edges,
            self.terminals,
            self.max_out_degree,
            self.max_depth,
            if self.truncated { " (TRUNCATED)" } else { "" }
        )
    }
}

/// A borrowed view of one graph node with **id-native** accessors:
/// process statuses, enabled sets and decision sets are read straight
/// from the store's representation (interned `u32` id rows resolve one
/// id through the interner; deep nodes borrow from the `Config`), so
/// property predicates probing thousands of nodes never re-materialize a
/// deep [`Config`] per probe. Use [`NodeView::config`] only when the
/// whole configuration is genuinely needed.
#[derive(Clone, Copy, Debug)]
pub struct NodeView<'g> {
    graph: &'g StateGraph,
    index: usize,
}

impl<'g> NodeView<'g> {
    /// This node's index in the graph.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of processes in the system.
    pub fn nprocs(&self) -> usize {
        match &self.graph.store {
            NodeStore::Deep(configs) => configs[self.index].nprocs(),
            NodeStore::Interned(nodes) => nodes.stride - nodes.nobjects,
            NodeStore::Virtual { .. } => unreachable!("NodeView over a Virtual store"),
        }
    }

    /// Status of process `pid`, borrowed from the store.
    pub fn status(&self, pid: Pid) -> &'g ProcStatus {
        match &self.graph.store {
            NodeStore::Deep(configs) => &configs[self.index].proc_state(pid).status,
            NodeStore::Interned(nodes) => {
                let row = self.index * nodes.stride;
                let id = nodes.words[row + nodes.nobjects + pid.index()];
                &nodes.interner.proc(id).status
            }
            NodeStore::Virtual { .. } => unreachable!("NodeView over a Virtual store"),
        }
    }

    /// Bitset of the enabled processes.
    pub fn enabled_bits(&self) -> u64 {
        match &self.graph.store {
            NodeStore::Deep(configs) => configs[self.index].enabled_set().bits(),
            _ => {
                let mut bits = 0u64;
                for p in 0..self.nprocs() {
                    if self.status(Pid::new(p)).is_enabled() {
                        bits |= 1 << p;
                    }
                }
                bits
            }
        }
    }

    /// `true` iff no process is enabled (a terminal configuration).
    pub fn is_final(&self) -> bool {
        self.enabled_bits() == 0
    }

    /// Per-process decisions, `None` for undecided processes.
    pub fn decisions(&self) -> Vec<Option<Value>> {
        (0..self.nprocs())
            .map(|p| self.status(Pid::new(p)).decision().cloned())
            .collect()
    }

    /// The sorted, deduplicated set of values decided at this node.
    pub fn decided_values(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = (0..self.nprocs())
            .filter_map(|p| self.status(Pid::new(p)).decision().cloned())
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// The full configuration, materialized on demand — per-probe cost
    /// the id-native accessors above avoid; prefer them in predicates.
    pub fn config(&self) -> Config {
        self.graph.config(self.index)
    }
}

/// The reachable configuration graph of a system, with every scheduler choice
/// and every nondeterministic object outcome expanded (unless reduced — see
/// [`StateGraph::is_por_reduced`]).
///
/// Node `0` is the initial configuration. Adjacency is stored in
/// compressed-sparse-row form: `row_ptr[i]..row_ptr[i + 1]` indexes node
/// `i`'s slice of one flat edge array.
#[derive(Clone, Debug)]
pub struct StateGraph {
    store: NodeStore,
    row_ptr: Vec<u32>,
    edge_arr: Vec<Edge>,
    terminals: Vec<usize>,
    truncated: bool,
    por: bool,
    metrics: ExploreMetrics,
    /// The streaming verdict of a [`ExploreGoal::Verdict`] exploration
    /// (`None` under [`ExploreGoal::FullGraph`]). When present, the CSR
    /// adjacency was never frozen — see [`StateGraph::is_verdict_only`].
    verdict: Option<StreamingVerdict>,
}

/// The frozen node arena of a [`StateGraph`], in whichever representation
/// the exploration used ([`ExploreOptions::interned`]).
#[derive(Clone, Debug)]
enum NodeStore {
    /// One deep [`Config`] per node.
    Deep(Vec<Config>),
    /// Hash-consed nodes (boxed: the arena bundle dwarfs the `Vec` variant).
    Interned(Box<InternedNodes>),
    /// No node contents at all — a sharded verdict-goal exploration skips
    /// the arena stitch/gather (its freeze phase) because verdict-only
    /// callers never look at configurations again. Only the node count
    /// survives.
    Virtual {
        /// Number of explored configurations.
        len: usize,
    },
}

/// Hash-consed node arena: `stride` id words per node in one flat row-major
/// array, resolved through the interner. `len` is explicit because a
/// zero-process zero-object system has `stride == 0`.
#[derive(Clone, Debug)]
struct InternedNodes {
    interner: StateInterner,
    nobjects: usize,
    stride: usize,
    words: Vec<u32>,
    len: usize,
}

impl NodeStore {
    fn len(&self) -> usize {
        match self {
            NodeStore::Deep(configs) => configs.len(),
            NodeStore::Interned(nodes) => nodes.len,
            NodeStore::Virtual { len } => *len,
        }
    }
}

/// The explorer's output before node storage is attached: CSR adjacency,
/// terminals and the truncation flag. Under a verdict goal the CSR vectors
/// are empty (the freeze is skipped) and `edges` keeps the true recorded
/// edge count for the metrics; otherwise `edges == edge_arr.len()`.
struct GraphCore {
    row_ptr: Vec<u32>,
    edge_arr: Vec<Edge>,
    terminals: Vec<usize>,
    truncated: bool,
    edges: usize,
    verdict: Option<StreamingVerdict>,
}

/// One-line stderr warning when an exploration hits its `max_configs`
/// bound: callers routinely ignore the `truncated` flag, and a silently
/// partial graph invalidates every analysis run on it. Emitted once per
/// process (a benchmark timing loop may truncate thousands of times); the
/// cause is always recorded per graph in [`ExploreMetrics`].
fn warn_truncated(cap: usize, configs: usize) {
    warn_once(
        "truncated",
        &format!(
            "modelcheck: WARNING: exploration truncated at max_configs = {cap} \
             ({configs} configs kept); analyses on this graph are partial \
             (further truncation warnings suppressed for this process)"
        ),
    );
}

/// One-line stderr hint when an in-memory exploration truncates on its
/// hot-tier byte budget: the disk store lifts exactly this bound.
fn warn_budget_truncated(budget: usize, configs: usize) {
    warn_once(
        "budget_truncated",
        &format!(
            "modelcheck: WARNING: exploration truncated at store_budget_bytes = \
             {budget} ({configs} configs kept); analyses on this graph are \
             partial. Set MC_STORE=disk (or \
             ExploreOptions::with_store(StoreBackend::Disk)) to spill cold \
             state to disk instead of truncating (further budget-truncation \
             warnings suppressed for this process)"
        ),
    );
}

/// One-line stderr note when the disk store is requested for a
/// deep-representation exploration, which cannot spill (there is no
/// interner arena to evict); the run proceeds fully in memory.
fn warn_disk_needs_interned() {
    warn_once(
        "disk_needs_interned",
        "modelcheck: NOTE: the disk store spills interner arenas, so it \
         requires the hash-consed representation \
         (ExploreOptions::interned); this deep-representation exploration \
         falls back to the in-memory store",
    );
}

/// Runs the level-synchronized BFS against `store` (already seeded with
/// node 0) and freezes the resulting adjacency into CSR form. All
/// reduction logic (symmetry, POR, the cycle proviso) lives here, once,
/// for both node representations.
fn explore_core<S: ConfigStore>(
    store: &mut S,
    opts: &ExploreOptions,
    rec: &Recorder,
) -> Result<GraphCore, SimError> {
    // Flat (from, edge) buffer, frozen into CSR at the end.
    let mut edge_buf: Vec<(u32, Edge)> = Vec::new();
    let mut terminals = Vec::new();
    let mut truncated = false;
    // Streaming-verdict accumulator (verdict goal only). Fed inside the
    // merge loop; consulted once per level, after the revisits, so the
    // exit point — and with it the explored-config count — is identical
    // for every thread count, shard count and store representation.
    let mut engine = match &opts.goal {
        ExploreGoal::FullGraph => None,
        ExploreGoal::Verdict(query) => Some(VerdictEngine::new(query.clone())),
    };
    let mut early_exit = false;

    // Per-node exploration bookkeeping. `depth` (first-discovery BFS
    // level) doubles as the cycle proviso's back-edge detector; the
    // rest is sleep-set state, all-zero without POR.
    let mut depth: Vec<u32> = vec![0];
    let mut first_sleep: Vec<u64> = vec![0];
    let mut explored: Vec<u64> = vec![0]; // pids fired or enqueued-and-merged
    let mut slept: Vec<u64> = vec![0]; // pids suppressed by sleep sets
    let mut pending: Vec<u64> = vec![0]; // pids enqueued, not yet merged
    let mut expanded: Vec<bool> = vec![false];
    let mut full: Vec<bool> = vec![false]; // escalated by the proviso

    let mut level = vec![WorkItem {
        node: 0,
        fire: 0,
        sleep: 0,
        fresh: true,
    }];
    let mut cur_depth: u32 = 0;
    let mut scratch: Vec<Edge> = Vec::new();
    // Memory-budget truncation: with an explicit hot-tier budget but no
    // spill to honor it by eviction, the level loop stops *adding* nodes
    // once the resident estimate crosses the budget — a clean, recorded
    // truncation instead of unbounded growth.
    let mem_budget = if store.spilling() {
        None
    } else {
        opts.effective_store_budget()
    };
    let mut frontier_ids: Vec<usize> = Vec::new();
    while !level.is_empty() {
        // Level wall time feeds the per-level trace records; read the
        // clock only when timing is on so the untimed path stays
        // syscall-free.
        let t_level = rec.is_timing().then(Instant::now);
        let nodes_before = depth.len();
        frontier_ids.clear();
        frontier_ids.extend(level.iter().map(|it| it.node));
        store.begin_level(&frontier_ids);
        let over_budget = mem_budget.is_some_and(|b| store.resident_estimate() > b);
        let level_cap = if over_budget { 0 } else { opts.max_configs };
        let ctx = LevelCtx {
            level: cur_depth,
            nodes: nodes_before,
            frontier: level.len(),
            remaining: opts.max_configs.saturating_sub(nodes_before),
        };
        let expansions = expand_level(&*store, &first_sleep, &level, opts, ctx)?;
        let merge_t = rec.time_merge();
        let mut next_level: Vec<WorkItem> = Vec::new();
        // POR: edges into already-known nodes; processed only after the
        // whole level has merged, because the target's own expansion may
        // merge later in this same level.
        let mut revisits: Vec<(usize, u64)> = Vec::new();
        for (item, exp) in level.iter().zip(expansions) {
            let i = item.node;
            if exp.terminal {
                terminals.push(i);
                expanded[i] = true;
                if let Some(eng) = engine.as_mut() {
                    eng.on_terminal(store.terminal_facts(i));
                }
                continue;
            }
            let mut escalate = false;
            scratch.clear();
            rec.count_sleep_pruned(u64::from(exp.slept.count_ones()));
            for (pid, step, succ_sleep) in exp.steps {
                let (j, known) = match step {
                    StepResult::Existing(j) => {
                        rec.count_dedup_hits(1);
                        (j, true)
                    }
                    // A worker's miss can be an earlier merge of this same
                    // level; `insert` re-checks before adding.
                    StepResult::Fresh(next) => {
                        let slot = {
                            let _t = rec.time_intern();
                            store.insert(next, level_cap)
                        };
                        match slot {
                            MergeSlot::Known(j) => {
                                rec.count_dedup_hits(1);
                                (j, true)
                            }
                            MergeSlot::Capped => {
                                rec.count_capped(1);
                                match mem_budget {
                                    Some(b) if over_budget => rec.set_budget_truncated(b),
                                    _ => rec.set_truncated(opts.max_configs),
                                }
                                truncated = true;
                                continue;
                            }
                            MergeSlot::Added(j) => {
                                rec.count_added(1);
                                assert!(j < u32::MAX as usize, "state graph exceeds u32 node ids");
                                depth.push(cur_depth + 1);
                                first_sleep.push(succ_sleep);
                                explored.push(0);
                                slept.push(0);
                                pending.push(0);
                                expanded.push(false);
                                full.push(false);
                                next_level.push(WorkItem {
                                    node: j,
                                    fire: 0,
                                    sleep: 0,
                                    fresh: true,
                                });
                                (j, false)
                            }
                        }
                    }
                };
                if known && depth[j] <= depth[i] {
                    // Retreating edge — the only kind that can close a
                    // cycle (depth deltas are <= +1 per edge and sum to 0
                    // around a cycle). Triggers the POR cycle proviso and
                    // registers a streaming cycle-check candidate.
                    if opts.por {
                        escalate = true;
                    }
                    if let Some(eng) = engine.as_mut() {
                        eng.on_retreating_edge();
                    }
                }
                if opts.por && known {
                    revisits.push((j, succ_sleep));
                }
                scratch.push(Edge { pid, to: j as u32 });
            }
            // Canonicalization can map distinct successors of one node
            // onto the same representative; drop the parallel
            // duplicates (the full graph never produces them). One
            // sort+dedup per expansion replaces the old O(deg²)
            // `contains` scan, and per-expansion dedup is per-node
            // dedup: a pid never fires twice for one node, so
            // duplicates cannot span expansions.
            if opts.symmetry {
                scratch.sort_unstable_by_key(|e| (e.pid.index(), e.to));
                scratch.dedup();
            }
            edge_buf.extend(scratch.drain(..).map(|e| (i as u32, e)));
            expanded[i] = true;
            explored[i] |= exp.fired;
            pending[i] &= !exp.fired;
            slept[i] = (slept[i] | exp.slept) & !explored[i];
            if opts.por && escalate && !full[i] {
                // Cycle proviso: fully expand one node per cycle so no
                // enabled process is ignored around it. Everything not
                // yet fired or in flight is fired next level, sleep
                // ignored.
                full[i] = true;
                let enabled = store.enabled_bits(i);
                let rest = enabled & !explored[i] & !pending[i];
                slept[i] = 0;
                if rest != 0 {
                    pending[i] |= rest;
                    next_level.push(WorkItem {
                        node: i,
                        fire: rest,
                        sleep: 0,
                        fresh: false,
                    });
                }
            }
            // Mid-merge heartbeat: the whole level's expansions are
            // already in the counter, so a long merge after a huge
            // expansion still reports within one interval of it.
            rec.heartbeat(
                cur_depth,
                depth.len(),
                level.len(),
                opts.max_configs.saturating_sub(depth.len()),
            );
        }
        // Sleep-set revisit rule: reaching a known node along a new
        // path whose sleep set no longer covers a previously-suppressed
        // pid re-fires exactly that pid. Processed after the level's
        // merges so `expanded`/`slept` are final for the level.
        for (j, new_sleep) in revisits {
            if !expanded[j] {
                // First expansion still queued: shrink the sleep set it
                // will start from instead.
                first_sleep[j] &= new_sleep;
                continue;
            }
            let wake = slept[j] & !new_sleep;
            if wake != 0 {
                slept[j] &= !wake;
                pending[j] |= wake;
                next_level.push(WorkItem {
                    node: j,
                    fire: wake,
                    sleep: new_sleep,
                    fresh: false,
                });
            }
        }
        drop(merge_t);
        rec.record_peak_bytes(store.resident_estimate());
        // Level-granular verdict evaluation: at most one (untimed) cycle
        // check per level, then exit if any queried conjunct is refuted.
        if let Some(eng) = engine.as_mut() {
            if eng.wants_cycle_check() {
                eng.record_cycle_check(edge_buf_has_cycle(depth.len(), &edge_buf));
            }
            early_exit = eng.refutation().is_some();
        }
        rec.record_level(
            level.len(),
            depth.len() - nodes_before,
            depth.len(),
            edge_buf.len(),
            t_level.map_or(Duration::ZERO, |t| t.elapsed()),
        );
        rec.heartbeat(
            cur_depth,
            depth.len(),
            next_level.len(),
            opts.max_configs.saturating_sub(depth.len()),
        );
        if early_exit {
            break;
        }
        level = next_level;
        cur_depth += 1;
    }
    terminals.sort_unstable();
    terminals.dedup();
    let verdict = engine.map(|mut eng| {
        if !truncated && !early_exit && eng.needs_final_cycle_check() {
            // A cycle through an old retreating candidate may only have
            // closed after that candidate's level was checked; completion
            // therefore re-checks once over the final edge buffer.
            eng.record_cycle_check(edge_buf_has_cycle(depth.len(), &edge_buf));
        }
        eng.finish(
            truncated.then_some(opts.max_configs),
            early_exit,
            depth.len(),
        )
    });
    let edges = edge_buf.len();
    let (row_ptr, edge_arr) = if verdict.is_some() {
        // Verdict goal: nobody reads the CSR — skip the freeze entirely.
        (Vec::new(), Vec::new())
    } else {
        freeze_csr(depth.len(), edge_buf, rec)
    };
    Ok(GraphCore {
        row_ptr,
        edge_arr,
        terminals,
        truncated,
        edges,
        verdict,
    })
}

/// Cycle check over the in-flight edge buffer: builds a throwaway CSR and
/// runs the same three-color DFS as [`StateGraph::has_cycle`]. Deliberately
/// *untimed* — under a verdict goal the freeze/reverse-CSR slots must read
/// zero calls, and this linear scan is part of the streaming merge work.
fn edge_buf_has_cycle(n: usize, edge_buf: &[(u32, Edge)]) -> bool {
    let mut row_ptr = vec![0u32; n + 1];
    for &(from, _) in edge_buf {
        row_ptr[from as usize + 1] += 1;
    }
    for k in 0..n {
        row_ptr[k + 1] += row_ptr[k];
    }
    let mut cursor: Vec<u32> = row_ptr[..n].to_vec();
    let mut to = vec![0u32; edge_buf.len()];
    for &(from, e) in edge_buf {
        let c = &mut cursor[from as usize];
        to[*c as usize] = e.to;
        *c += 1;
    }
    // Three-color DFS (0 = white, 1 = on stack, 2 = done), iterative.
    let mut color = vec![0u8; n];
    let mut stack: Vec<(u32, u32)> = Vec::new();
    for root in 0..n as u32 {
        if color[root as usize] != 0 {
            continue;
        }
        color[root as usize] = 1;
        stack.push((root, row_ptr[root as usize]));
        while let Some(&mut (v, ref mut e)) = stack.last_mut() {
            if *e == row_ptr[v as usize + 1] {
                color[v as usize] = 2;
                stack.pop();
                continue;
            }
            let w = to[*e as usize];
            *e += 1;
            match color[w as usize] {
                0 => {
                    color[w as usize] = 1;
                    stack.push((w, row_ptr[w as usize]));
                }
                1 => return true, // back edge: cycle
                _ => {}
            }
        }
    }
    false
}

/// Freezes a flat `(from, edge)` buffer into CSR adjacency: a stable
/// counting sort by source node (edges of one node keep their merge
/// order).
fn freeze_csr(n: usize, edge_buf: Vec<(u32, Edge)>, rec: &Recorder) -> (Vec<u32>, Vec<Edge>) {
    let _t = rec.time_freeze();
    assert!(
        edge_buf.len() < u32::MAX as usize,
        "state graph exceeds u32 edge ids"
    );
    let mut row_ptr = vec![0u32; n + 1];
    for &(from, _) in &edge_buf {
        row_ptr[from as usize + 1] += 1;
    }
    for k in 0..n {
        row_ptr[k + 1] += row_ptr[k];
    }
    let mut cursor: Vec<u32> = row_ptr[..n].to_vec();
    let mut edge_arr = vec![
        Edge {
            pid: Pid::new(0),
            to: 0
        };
        edge_buf.len()
    ];
    for (from, e) in edge_buf {
        let c = &mut cursor[from as usize];
        edge_arr[*c as usize] = e;
        *c += 1;
    }
    (row_ptr, edge_arr)
}

// ---------------------------------------------------------------------------
// Sharded exploration (Stern–Dill fingerprint partitioning)
// ---------------------------------------------------------------------------
//
// With [`ExploreOptions::shards`] > 1 the visited set, interner arena and
// frontier are partitioned by the *content* fingerprint of each
// (canonicalized) configuration — a fingerprint computed from the states
// themselves, never from interner ids, so every occurrence of one
// configuration routes to the same owning shard no matter which shard
// produced it. Each BFS level then runs in five phases:
//
// 1. **Expand** (parallel, one worker per shard): each shard steps its own
//    frontier items, canonicalizes the successors, and routes each into
//    the owning shard's inbox tagged with a globally ordered production
//    tag `(frontier item sequence, step index)`.
// 2. **Merge** (parallel): each shard sorts its inbox by tag and
//    find-or-inserts every carrier into its own dedup table — because all
//    occurrences of a configuration share one owner, the shard alone
//    decides which occurrence is globally first.
// 3. **Assign** (sequential): the per-shard new-node tag lists are merged
//    by tag; the first `max_configs − total` get dense global node ids in
//    tag order — exactly the order the single-store merge would have
//    inserted them — and the over-budget suffix of each shard's arena is
//    popped back out.
// 4. **Feedback** (sequential): the per-tag responses are replayed in tag
//    order against the global bookkeeping — edges, sleep sets, cycle
//    proviso escalations, revisit wake-ups — reproducing the single-store
//    merge loop decision-for-decision.
// 5. The next frontier is sequenced in the same order the single-store
//    explorer would have enqueued it, and each item stays with its owning
//    shard.
//
// Because symmetry canonicalization runs *before* fingerprinting and the
// canonical form is content-addressed, an orbit never splits across
// shards; POR decisions all happen in the sequential feedback phase
// against global state. The produced graph — node numbering, edges,
// terminals, truncation — is therefore identical for every shard count,
// which `scripts/bench_guard.sh` gates by diffing `MC_SHARDS=1` vs
// `MC_SHARDS=4` GUARD lines on every CI run.

/// Globally unique, totally ordered production tag of one routed
/// successor: `(frontier item sequence << 32) | step index`. Ordering by
/// tag reproduces the exact insertion order of the single-store merge.
type Tag = u64;

fn tag(seq: u32, step: u32) -> Tag {
    (u64::from(seq) << 32) | u64::from(step)
}

/// One routed successor: production tag, content fingerprint, carrier.
type Routed<W> = (Tag, u64, W);

/// Routed successors are staged in small per-worker buffers and flushed
/// into the owner's shared sink in chunks of at most this many entries,
/// so per-worker staging memory stays bounded no matter how hot one
/// shard runs (private per-worker outbox `Vec`s used to hold a whole
/// level's traffic per worker before the gather).
const OUTBOX_CHUNK: usize = 1024;

/// One bounded-queue sink per owning shard, shared by every expansion
/// worker. Workers append whole chunks under the lock (at most one
/// acquisition per [`OUTBOX_CHUNK`] successors), and the merge phase
/// sorts each inbox by production tag — so arrival order, and with it
/// lock contention, cannot affect the produced graph.
type OutboxSinks<W> = Vec<Mutex<Vec<Routed<W>>>>;

/// Queue-pressure counters of one shard's expansion pass.
#[derive(Clone, Copy, Default)]
struct OutboxStats {
    /// Successors this shard routed to owners (its own included).
    sent: u64,
    /// Chunk flushes into the shared sinks.
    flushes: u64,
}

/// What one shard's expansion pass returns: `(seq, expansion)` per item
/// plus queue-pressure stats (the successors themselves were already
/// flushed into the shared [`OutboxSinks`]).
type ExpandOut = Result<(Vec<(u32, ShardExpansion)>, OutboxStats), SimError>;

/// What one shard's merge pass returns: `(tag, local index, inserted?)`
/// per routed successor, plus the tags that inserted new nodes (in local
/// index order).
type MergeOut = (Vec<(Tag, u32, bool)>, Vec<Tag>);

/// One successor leaving a shard: `(wire form, content fingerprint,
/// canonicalization permutation)`.
type WireSucc<W> = (W, u64, Option<Vec<usize>>);

/// The storage backend of one shard: a dedup table plus node arena that
/// owns every configuration whose content fingerprint maps to it.
///
/// Mirrors [`ConfigStore`] with two differences: node indices are
/// *shard-local* (the orchestrator maps them to global ids), and
/// successors are returned in an interner-independent wire form so they
/// can cross into another shard's arena.
trait ShardStore: Send + Sync {
    /// Carrier a successor travels in between producing and owning shard.
    type Wire: Send;

    fn spec(&self) -> &SystemSpec;

    /// Enabled-process bitset of local node `local`.
    fn enabled_bits(&self, local: usize) -> u64;

    /// Footprint of `pid`'s next step at local node `local`.
    fn footprint(&self, local: usize, pid: Pid) -> Result<StepFootprint, SimError>;

    /// Whether two steps with these footprints commute at local node
    /// `local`.
    fn independent(&self, local: usize, a: &StepFootprint, b: &StepFootprint) -> bool;

    /// All successors of stepping `pid` at local node `local`:
    /// `(wire, content fingerprint, canonicalization permutation)`.
    /// The fingerprint is computed *after* canonicalization, so a whole
    /// symmetry orbit maps to one owning shard.
    fn successors(
        &self,
        local: usize,
        pid: Pid,
        symmetry: bool,
        timers: &Recorder,
    ) -> Result<Vec<WireSucc<Self::Wire>>, SimError>;

    /// Owner-side find-or-insert, *unbounded*: the global configuration
    /// budget is settled afterwards by the assign phase, which pops the
    /// over-budget suffix back out with [`pop_last`](Self::pop_last).
    fn insert(&mut self, wire: Self::Wire, fp: u64, timers: &Recorder) -> (usize, bool);

    /// Undoes the most recent `n` inserts (the over-budget suffix).
    fn pop_last(&mut self, n: usize);

    /// Streaming-verdict facts of terminal local node `local` — the
    /// sharded twin of [`ConfigStore::terminal_facts`].
    fn terminal_facts(&self, local: usize) -> TerminalFacts;

    /// Sequential level-boundary hook (the sharded twin of
    /// [`ConfigStore::begin_level`]): called with this shard's slice of
    /// the frontier, in *local* node ids, before the level's parallel
    /// expansion. Spill counters land on `rec` (the main recorder).
    fn begin_level(&mut self, _frontier: &[usize], _rec: &Recorder) {}

    /// Estimated resident bytes of this shard's hot tier.
    fn resident_estimate(&self) -> usize {
        0
    }

    /// Whether this shard spills cold state to disk.
    fn spilling(&self) -> bool {
        false
    }
}

/// Deep-configuration shard: one [`Config`] per local node, dedup
/// verified by deep equality. The wire form is the `Config` itself.
struct DeepShard<'a> {
    spec: &'a SystemSpec,
    configs: Vec<Config>,
    /// Content fingerprint per local node (for index removal on pop).
    fps: Vec<u64>,
    index: HashMap<u64, Vec<usize>>,
}

impl<'a> DeepShard<'a> {
    fn new(spec: &'a SystemSpec) -> Self {
        DeepShard {
            spec,
            configs: Vec::new(),
            fps: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Installs the initial configuration as local node 0 (owner only).
    fn seed(&mut self, init: Config, fp: u64) {
        debug_assert!(self.configs.is_empty());
        self.configs.push(init);
        self.fps.push(fp);
        self.index.entry(fp).or_default().push(0);
    }
}

impl ShardStore for DeepShard<'_> {
    type Wire = Config;

    fn spec(&self) -> &SystemSpec {
        self.spec
    }

    fn enabled_bits(&self, local: usize) -> u64 {
        self.configs[local].enabled_set().bits()
    }

    fn footprint(&self, local: usize, pid: Pid) -> Result<StepFootprint, SimError> {
        self.spec.step_footprint(&self.configs[local], pid)
    }

    fn independent(&self, local: usize, a: &StepFootprint, b: &StepFootprint) -> bool {
        self.spec.footprints_independent(&self.configs[local], a, b)
    }

    fn successors(
        &self,
        local: usize,
        pid: Pid,
        symmetry: bool,
        timers: &Recorder,
    ) -> Result<Vec<WireSucc<Self::Wire>>, SimError> {
        let mut out = Vec::new();
        let succs = {
            let _t = timers.time_expand();
            self.spec.successors(&self.configs[local], pid)?
        };
        for (next, _info) in succs {
            let (next, perm) = if symmetry {
                let _t = timers.time_canonicalize();
                self.spec.canonicalize_config_perm(next)
            } else {
                (next, None)
            };
            let fp = {
                let _t = timers.time_dedup();
                fingerprint(&next)
            };
            out.push((next, fp, perm));
        }
        Ok(out)
    }

    fn insert(&mut self, wire: Config, fp: u64, timers: &Recorder) -> (usize, bool) {
        let _t = timers.time_intern();
        let known = self
            .index
            .get(&fp)
            .and_then(|ids| ids.iter().copied().find(|&j| self.configs[j] == wire));
        if let Some(j) = known {
            return (j, false);
        }
        let j = self.configs.len();
        self.configs.push(wire);
        self.fps.push(fp);
        self.index.entry(fp).or_default().push(j);
        (j, true)
    }

    fn pop_last(&mut self, n: usize) {
        for _ in 0..n {
            let l = self.configs.len() - 1;
            let fp = self.fps.pop().expect("pop beyond arena");
            let bucket = self.index.get_mut(&fp).expect("indexed fingerprint");
            // Locals enter a bucket in increasing order, so the popped
            // node is its bucket's last entry.
            let popped = bucket.pop();
            debug_assert_eq!(popped, Some(l));
            if bucket.is_empty() {
                self.index.remove(&fp);
            }
            self.configs.pop();
        }
    }

    fn terminal_facts(&self, local: usize) -> TerminalFacts {
        let c = &self.configs[local];
        facts_from_statuses((0..c.nprocs()).map(|p| &c.proc_state(Pid::new(p)).status))
    }

    fn resident_estimate(&self) -> usize {
        let per_config = std::mem::size_of::<Config>()
            + self.configs.first().map_or(0, |c| {
                (c.nobjects() + c.nprocs()) * std::mem::size_of::<usize>()
            });
        self.configs.len() * per_config
            + self.fps.len() * std::mem::size_of::<u64>()
            + index_bytes(self.index.len(), self.configs.len())
    }
}

/// Hash-consed shard: its own [`StateInterner`] arena plus flat id-word
/// rows, deduplicated by *content* fingerprint (verified by a word
/// compare after adoption — sound because within one interner id
/// equality is state equality). Successors cross shards as
/// [`WireConfig`]s.
struct CompactShard<'a> {
    spec: &'a SystemSpec,
    interner: StateInterner,
    nobjects: usize,
    stride: usize,
    /// Hot id-word rows: locals `[hot_base, len)` when spilling (the
    /// on-disk prefix is faulted through the spill), all locals otherwise.
    words: Vec<u32>,
    len: usize,
    /// Content fingerprint per local node (dedup key + pop removal).
    fps: Vec<u64>,
    index: HashMap<u64, Vec<usize>>,
    /// Locals currently filed in `index` (drains reset it).
    index_ids: usize,
    /// Disk spill state ([`StoreBackend::Disk`] only).
    spill: Option<Spill>,
}

impl<'a> CompactShard<'a> {
    fn new(spec: &'a SystemSpec, nobjects: usize, stride: usize) -> Self {
        CompactShard {
            spec,
            interner: StateInterner::new(),
            nobjects,
            stride,
            words: Vec::new(),
            len: 0,
            fps: Vec::new(),
            index: HashMap::new(),
            index_ids: 0,
            spill: None,
        }
    }

    /// Turns this shard disk-backed with the given hot-tier budget.
    fn enable_spill(&mut self, budget: usize) {
        debug_assert!(self.spill.is_none());
        self.spill = Some(Spill::new(self.stride, budget));
    }

    /// Installs the initial configuration as local node 0 (owner only).
    fn seed(&mut self, init: &Config, fp: u64) {
        debug_assert_eq!(self.len, 0);
        let compact = self.interner.intern_config(init);
        self.words.extend_from_slice(compact.words());
        self.fps.push(fp);
        self.index.entry(fp).or_default().push(0);
        self.index_ids = 1;
        self.len = 1;
    }

    fn row(&self, i: usize) -> &[u32] {
        self.row_resident(i)
            .expect("spilled row accessed outside the pinned frontier")
    }

    /// Local `i`'s row if resident — the sharded twin of
    /// [`CompactStore::row_resident`].
    fn row_resident(&self, i: usize) -> Option<&[u32]> {
        let hot_base = self.spill.as_ref().map_or(0, Spill::hot_base);
        if i >= hot_base {
            let k = i - hot_base;
            Some(&self.words[k * self.stride..(k + 1) * self.stride])
        } else {
            self.spill.as_ref().and_then(|s| s.reloaded_row(i))
        }
    }

    /// Makes this shard's frontier rows and their referenced arena
    /// segments resident, pinned for the whole level.
    fn pin_frontier(&mut self, frontier: &[usize], rec: &Recorder) {
        let hot_base = self.spill.as_ref().map_or(0, Spill::hot_base);
        for &i in frontier {
            if i < hot_base {
                self.spill
                    .as_mut()
                    .expect("hot_base > 0 implies a spill")
                    .fault_row(i, rec);
            }
        }
        let mut segs: Vec<(bool, usize)> = Vec::new();
        for &i in frontier {
            let row = self.row(i);
            for (slot, &id) in row.iter().enumerate() {
                segs.push((slot >= self.nobjects, id as usize / ARENA_SEGMENT));
            }
        }
        segs.sort_unstable();
        segs.dedup();
        for (procs, seg) in segs {
            restore_and_pin(&mut self.interner, &mut self.spill, rec, procs, seg);
        }
    }

    /// The sharded twin of [`CompactStore::evict_to_budget`].
    fn evict_to_budget(&mut self, rec: &Recorder) {
        let Some(spill) = self.spill.as_ref() else {
            return;
        };
        let budget = spill.budget;
        let level = spill.level;
        if self.resident_estimate() <= budget {
            return;
        }
        let cands = evictable_segments(&self.interner, self.spill.as_ref().unwrap(), level);
        for (_, procs, seg) in cands {
            if self.resident_estimate() <= budget {
                break;
            }
            evict_segment(
                &mut self.interner,
                self.spill.as_mut().unwrap(),
                rec,
                procs,
                seg,
            );
        }
        if self.resident_estimate() > budget {
            let mut index = std::mem::take(&mut self.index);
            self.spill.as_mut().unwrap().drain_index(&mut index, rec);
            self.index = index;
            self.index_ids = 0;
        }
    }

    /// Freeze-time reconstitution — see the free [`unspill`]. Sharded
    /// explorations unspill each shard before the arena stitch.
    fn unspill(&mut self, rec: &Recorder) {
        unspill(&mut self.interner, &mut self.spill, &mut self.words, rec);
    }
}

impl ShardStore for CompactShard<'_> {
    type Wire = WireConfig;

    fn spec(&self) -> &SystemSpec {
        self.spec
    }

    fn enabled_bits(&self, local: usize) -> u64 {
        self.interner.enabled_bits(self.nobjects, self.row(local))
    }

    fn footprint(&self, local: usize, pid: Pid) -> Result<StepFootprint, SimError> {
        self.spec
            .compact_footprint(&self.interner, self.row(local), pid)
    }

    fn independent(&self, local: usize, a: &StepFootprint, b: &StepFootprint) -> bool {
        match (a, b) {
            (StepFootprint::Local, _) | (_, StepFootprint::Local) => true,
            (
                StepFootprint::Object { obj: oa, op: pa },
                StepFootprint::Object { obj: ob, op: pb },
            ) => {
                oa != ob
                    || self.spec.ops_commute(
                        *oa,
                        self.interner.object(self.row(local)[oa.index()]),
                        pa,
                        pb,
                    )
            }
        }
    }

    fn successors(
        &self,
        local: usize,
        pid: Pid,
        symmetry: bool,
        timers: &Recorder,
    ) -> Result<Vec<WireSucc<Self::Wire>>, SimError> {
        let row = self.row(local);
        let mut out = Vec::new();
        let succs = {
            let _t = timers.time_expand();
            self.spec.compact_successors(&self.interner, row, pid)?
        };
        for mut pending in succs {
            let perm = if symmetry {
                let _t = timers.time_canonicalize();
                self.spec.compact_canonicalize(&self.interner, &mut pending)
            } else {
                None
            };
            let fp = {
                let _t = timers.time_dedup();
                pending.content_fingerprint(&self.interner)
            };
            out.push((pending.export(&self.interner), fp, perm));
        }
        Ok(out)
    }

    fn insert(&mut self, wire: WireConfig, fp: u64, timers: &Recorder) -> (usize, bool) {
        let _t = timers.time_intern();
        // Owner-side adoption is the authoritative dedup: restore every
        // cold hash-colliding candidate of the wire's states first (the
        // interner panics rather than skip one — see `CompactStore::insert`).
        if self.spill.is_some() {
            let mut cold: Vec<(bool, usize)> = Vec::new();
            self.interner.cold_segments_for_wire(&wire, &mut cold);
            for (procs, seg) in cold {
                restore_and_pin(&mut self.interner, &mut self.spill, timers, procs, seg);
            }
        }
        let compact = self.interner.adopt(wire);
        let words = compact.words();
        let mut cands: Vec<usize> = self.index.get(&fp).cloned().unwrap_or_default();
        if let Some(spill) = self.spill.as_mut() {
            if spill.drained {
                spill.spilled_candidates(fp, &mut cands, timers);
            }
        }
        let spilling = self.spill.is_some();
        let mut known = None;
        for j in cands {
            let hit = match self.row_resident(j) {
                Some(row) => {
                    if spilling {
                        timers.count_store_hot_hits(1);
                    }
                    row == words
                }
                None => {
                    timers.count_store_hot_misses(1);
                    let spill = self
                        .spill
                        .as_mut()
                        .expect("non-resident row implies a spill");
                    spill.fault_row(j, timers) == words
                }
            };
            if hit {
                known = Some(j);
                break;
            }
        }
        if let Some(j) = known {
            return (j, false);
        }
        let j = self.len;
        self.words.extend_from_slice(words);
        self.fps.push(fp);
        self.index.entry(fp).or_default().push(j);
        self.index_ids += 1;
        self.len += 1;
        (j, true)
    }

    fn pop_last(&mut self, n: usize) {
        // Popped locals are always this level's inserts, which postdate
        // the last `begin_level`: their rows are hot and their index
        // entries are still in the in-memory map (never drained).
        let hot_base = self.spill.as_ref().map_or(0, Spill::hot_base);
        for _ in 0..n {
            let l = self.len - 1;
            debug_assert!(l >= hot_base, "popping a spilled local");
            let fp = self.fps.pop().expect("pop beyond arena");
            let bucket = self.index.get_mut(&fp).expect("indexed fingerprint");
            let popped = bucket.pop();
            debug_assert_eq!(popped, Some(l));
            if bucket.is_empty() {
                self.index.remove(&fp);
            }
            self.index_ids -= 1;
            self.len = l;
            self.words.truncate((self.len - hot_base) * self.stride);
            // Adopted states stay in the interner arena: re-popping them
            // would invalidate ids already handed out, and an over-budget
            // configuration's states are usually shared with kept ones.
        }
    }

    fn terminal_facts(&self, local: usize) -> TerminalFacts {
        let row = self.row(local);
        facts_from_statuses(
            row[self.nobjects..]
                .iter()
                .map(|&id| &self.interner.proc(id).status),
        )
    }

    fn begin_level(&mut self, frontier: &[usize], rec: &Recorder) {
        if self.spill.is_none() {
            return;
        }
        {
            let spill = self.spill.as_mut().unwrap();
            spill.level += 1;
            spill.clear_reloaded();
        }
        let budget = self.spill.as_ref().unwrap().budget;
        if self.resident_estimate() > budget {
            let rows = std::mem::take(&mut self.words);
            self.spill.as_mut().unwrap().spill_rows(&rows, rec);
        }
        self.pin_frontier(frontier, rec);
        self.evict_to_budget(rec);
    }

    fn resident_estimate(&self) -> usize {
        self.interner.table_bytes()
            + self.interner.resident_state_bytes()
            + self.words.len() * std::mem::size_of::<u32>()
            + self.fps.len() * std::mem::size_of::<u64>()
            + index_bytes(self.index.len(), self.index_ids)
            + self
                .spill
                .as_ref()
                .map_or(0, |s| s.reloaded_bytes() + s.bucket_cache_bytes())
    }

    fn spilling(&self) -> bool {
        self.spill.is_some()
    }
}

/// One globally-sequenced frontier entry of the sharded explorer: a
/// [`WorkItem`] keyed by global node id (the owning shard and local index
/// come from the home directory when the level is partitioned).
#[derive(Clone, Copy)]
struct FrontItem {
    node: u32,
    fire: u64,
    sleep: u64,
    fresh: bool,
}

/// A frontier entry as handed to its owning shard: `seq` is the item's
/// position in the globally ordered frontier (the high half of every
/// production tag it emits).
#[derive(Clone, Copy)]
struct ShardItem {
    seq: u32,
    global: u32,
    local: u32,
    fire: u64,
    sleep: u64,
    fresh: bool,
}

/// The expansion of one shard item, minus the successors themselves
/// (those were routed to their owners): per-step metadata in tag order.
struct ShardExpansion {
    /// `(stepping pid, successor sleep mask)` per routed successor.
    steps: Vec<(Pid, u64)>,
    fired: u64,
    slept: u64,
    terminal: bool,
}

/// Read-only per-level context shared by every shard's expansion pass.
#[derive(Clone, Copy)]
struct ExpandCtx<'a> {
    first_sleep: &'a [u64],
    opts: &'a ExploreOptions,
    nshards: usize,
    /// Shared counters + heartbeat sink (the exploration's recorder; the
    /// per-shard child recorders only collect phase timers).
    main: &'a Recorder,
    lvl: LevelCtx,
}

/// Expands one shard's slice of the frontier: the sharded twin of
/// [`expand_item`], with successors routed into the owners' shared
/// bounded-queue sinks instead of looked up against a shared store.
fn expand_shard<S: ShardStore>(
    store: &S,
    items: &[ShardItem],
    sinks: &OutboxSinks<S::Wire>,
    timers: &Recorder,
    e: ExpandCtx<'_>,
) -> ExpandOut {
    let opts = e.opts;
    let mut exps = Vec::with_capacity(items.len());
    let mut staged: Vec<Vec<Routed<S::Wire>>> = (0..e.nshards).map(|_| Vec::new()).collect();
    let mut stats = OutboxStats::default();
    for item in items {
        e.main.count_expansions(1);
        e.main
            .heartbeat(e.lvl.level, e.lvl.nodes, e.lvl.frontier, e.lvl.remaining);
        let local = item.local as usize;
        let enabled = store.enabled_bits(local);
        if enabled == 0 {
            exps.push((
                item.seq,
                ShardExpansion {
                    steps: Vec::new(),
                    fired: 0,
                    slept: 0,
                    terminal: true,
                },
            ));
            continue;
        }
        let mut fps: Vec<Option<StepFootprint>> = Vec::new();
        if opts.por {
            let _t = timers.time_por();
            fps = vec![None; store.spec().nprocs()];
            let mut it = enabled;
            while it != 0 {
                let i = it.trailing_zeros() as usize;
                it &= it - 1;
                fps[i] = Some(store.footprint(local, Pid::new(i))?);
            }
        }
        let (fire, sleep, slept) = if !opts.por {
            (enabled, 0, 0)
        } else if item.fresh {
            let _t = timers.time_por();
            let sleep = e.first_sleep[item.global as usize] & enabled;
            let ample = choose_ample(store.spec(), enabled, &fps);
            let mut fire = ample & !sleep;
            let mut slept = ample & sleep;
            if fire == 0 {
                let low = ample & ample.wrapping_neg();
                fire = low;
                slept &= !low;
            }
            (fire, sleep, slept)
        } else {
            (item.fire, item.sleep, 0)
        };
        let mut steps = Vec::new();
        let mut step_idx = 0u32;
        let mut done = 0u64;
        let mut it = fire;
        while it != 0 {
            let i = it.trailing_zeros() as usize;
            it &= it - 1;
            let pid = Pid::new(i);
            let base = if opts.por {
                (sleep | done) & enabled & !(1 << i)
            } else {
                0
            };
            for (wire, cfp, perm) in store.successors(local, pid, opts.symmetry, timers)? {
                if perm.is_some() {
                    e.main.count_symmetry_hits(1);
                }
                let mut succ_sleep = 0u64;
                if base != 0 {
                    let _t = timers.time_por();
                    let me = fps[i].as_ref().expect("enabled pid has a footprint");
                    let mut qs = base;
                    while qs != 0 {
                        let q = qs.trailing_zeros() as usize;
                        qs &= qs - 1;
                        let other = fps[q].as_ref().expect("enabled pid has a footprint");
                        if store.independent(local, me, other) {
                            succ_sleep |= 1 << q;
                        }
                    }
                    if let Some(perm) = &perm {
                        succ_sleep = permute_mask(succ_sleep, perm);
                    }
                }
                let owner = shard_of_fingerprint(cfp, e.nshards);
                let buf = &mut staged[owner];
                buf.push((tag(item.seq, step_idx), cfp, wire));
                stats.sent += 1;
                if buf.len() >= OUTBOX_CHUNK {
                    stats.flushes += 1;
                    sinks[owner]
                        .lock()
                        .expect("outbox sink poisoned")
                        .append(buf);
                }
                steps.push((pid, succ_sleep));
                step_idx += 1;
            }
            done |= 1 << i;
        }
        e.main.count_generated(steps.len() as u64);
        exps.push((
            item.seq,
            ShardExpansion {
                steps,
                fired: fire,
                slept,
                terminal: false,
            },
        ));
    }
    for (owner, buf) in staged.iter_mut().enumerate() {
        if !buf.is_empty() {
            stats.flushes += 1;
            sinks[owner]
                .lock()
                .expect("outbox sink poisoned")
                .append(buf);
        }
    }
    Ok((exps, stats))
}

/// Merges one shard's inbox: sort by production tag (the global
/// single-store insertion order), then find-or-insert each carrier into
/// the shard's own table. Because every occurrence of a configuration
/// routes here, the first inserted occurrence is the *globally* first.
fn merge_shard<S: ShardStore>(
    store: &mut S,
    mut inbox: Vec<Routed<S::Wire>>,
    timers: &Recorder,
) -> MergeOut {
    let _m = timers.time_merge();
    inbox.sort_unstable_by_key(|r| r.0);
    let mut responses = Vec::with_capacity(inbox.len());
    let mut new_tags = Vec::new();
    for (t, cfp, wire) in inbox {
        let (local, is_new) = store.insert(wire, cfp, timers);
        responses.push((t, local as u32, is_new));
        if is_new {
            new_tags.push(t);
        }
    }
    (responses, new_tags)
}

/// Runs the sharded level-synchronized BFS (see the section comment
/// above) and freezes the adjacency. Returns the graph core plus the
/// home directory mapping every global node id to `(shard, local)`.
///
/// `shards` must already hold the initial configuration as local node 0
/// of `init_owner`.
fn explore_sharded<S: ShardStore>(
    shards: &mut [S],
    init_owner: usize,
    opts: &ExploreOptions,
    rec: &Recorder,
) -> Result<(GraphCore, Vec<(u32, u32)>), SimError> {
    let nshards = shards.len();
    let children: Vec<Recorder> = (0..nshards).map(|_| rec.shard_child()).collect();
    let mut edge_buf: Vec<(u32, Edge)> = Vec::new();
    let mut terminals = Vec::new();
    let mut truncated = false;
    // Streaming-verdict engine: fed in the sequential tag-ordered phase-4
    // replay, so the accumulated facts are identical to `explore_core`'s
    // for every shard count.
    let mut engine = match &opts.goal {
        ExploreGoal::FullGraph => None,
        ExploreGoal::Verdict(query) => Some(VerdictEngine::new(query.clone())),
    };
    let mut early_exit = false;

    // Global per-node bookkeeping, exactly as in `explore_core`.
    let mut depth: Vec<u32> = vec![0];
    let mut first_sleep: Vec<u64> = vec![0];
    let mut explored: Vec<u64> = vec![0];
    let mut slept: Vec<u64> = vec![0];
    let mut pending: Vec<u64> = vec![0];
    let mut expanded: Vec<bool> = vec![false];
    let mut full: Vec<bool> = vec![false];
    // Global node id → (owning shard, local index), and the inverse.
    let mut home: Vec<(u32, u32)> = vec![(init_owner as u32, 0)];
    let mut l2g: Vec<Vec<u32>> = vec![Vec::new(); nshards];
    l2g[init_owner].push(0);

    // Per-shard telemetry (graph shape + traffic).
    let mut shard_edges = vec![0usize; nshards];
    let mut traffic_sent = vec![0u64; nshards];
    let mut traffic_recv = vec![0u64; nshards];
    let mut max_outbox = vec![0usize; nshards];
    let mut outbox_flushes = vec![0u64; nshards];

    let mut frontier = vec![FrontItem {
        node: 0,
        fire: 0,
        sleep: 0,
        fresh: true,
    }];
    let mut cur_depth: u32 = 0;
    let mut scratch: Vec<Edge> = Vec::new();
    // Memory-budget truncation, as in `explore_core`: only when no shard
    // can honor the budget by spilling. (With per-shard estimates summed
    // each level, the decision depends on shard count, so budget-truncated
    // in-memory runs do not claim cross-shard graph identity; disk runs
    // do — eviction never changes the graph.)
    let mem_budget = if shards.iter().any(|s| s.spilling()) {
        None
    } else {
        opts.effective_store_budget()
    };
    let mut local_ids: Vec<usize> = Vec::new();
    while !frontier.is_empty() {
        let t_level = rec.is_timing().then(Instant::now);
        let nodes_before = depth.len();
        // Partition the globally ordered frontier into per-shard queues.
        let mut frontiers: Vec<Vec<ShardItem>> = vec![Vec::new(); nshards];
        for (seq, it) in frontier.iter().enumerate() {
            let (s, l) = home[it.node as usize];
            frontiers[s as usize].push(ShardItem {
                seq: seq as u32,
                global: it.node,
                local: l,
                fire: it.fire,
                sleep: it.sleep,
                fresh: it.fresh,
            });
        }
        // Sequential level-boundary hook per shard (workers not yet
        // spawned): a disk-backed shard spills/evicts here, pinning its
        // slice of the frontier resident for the level.
        for (k, store) in shards.iter_mut().enumerate() {
            local_ids.clear();
            local_ids.extend(frontiers[k].iter().map(|it| it.local as usize));
            store.begin_level(&local_ids, rec);
        }
        let over_budget = mem_budget
            .is_some_and(|b| shards.iter().map(|s| s.resident_estimate()).sum::<usize>() > b);
        let ectx = ExpandCtx {
            first_sleep: &first_sleep,
            opts,
            nshards,
            main: rec,
            lvl: LevelCtx {
                level: cur_depth,
                nodes: nodes_before,
                frontier: frontier.len(),
                remaining: opts.max_configs.saturating_sub(nodes_before),
            },
        };
        let run_parallel =
            nshards > 1 && frontier.len() >= PARALLEL_THRESHOLD && host_parallelism() > 1;

        // Phase 1: expand, one worker per shard. Successors flow through
        // shared per-owner bounded-queue sinks in fixed-size chunks, so
        // no worker ever holds more than `nshards * OUTBOX_CHUNK` staged
        // entries regardless of how hot a shard runs.
        let sinks: OutboxSinks<S::Wire> = (0..nshards).map(|_| Mutex::new(Vec::new())).collect();
        let mut expand_out: Vec<Option<ExpandOut>> = (0..nshards).map(|_| None).collect();
        {
            let sinks = &sinks;
            let jobs = shards
                .iter()
                .zip(&frontiers)
                .zip(&children)
                .zip(expand_out.iter_mut());
            if run_parallel {
                std::thread::scope(|sc| {
                    for (((store, items), child), out) in jobs {
                        sc.spawn(move || {
                            *out = Some(expand_shard(store, items, sinks, child, ectx));
                        });
                    }
                });
            } else {
                for (((store, items), child), out) in jobs {
                    *out = Some(expand_shard(store, items, sinks, child, ectx));
                }
            }
        }
        let mut item_exps: Vec<Option<ShardExpansion>> = frontier.iter().map(|_| None).collect();
        for (k, slot) in expand_out.into_iter().enumerate() {
            let (exps, stats) = slot.expect("every shard expanded")?;
            for (seq, e) in exps {
                item_exps[seq as usize] = Some(e);
            }
            traffic_sent[k] += stats.sent;
            outbox_flushes[k] += stats.flushes;
        }
        let inboxes: Vec<Vec<Routed<S::Wire>>> = sinks
            .into_iter()
            .map(|m| m.into_inner().expect("outbox sink poisoned"))
            .collect();
        for (k, inbox) in inboxes.iter().enumerate() {
            traffic_recv[k] += inbox.len() as u64;
            max_outbox[k] = max_outbox[k].max(inbox.len());
        }

        // Phase 2: merge, one worker per shard, each against its own table.
        let mut merge_out: Vec<Option<MergeOut>> = (0..nshards).map(|_| None).collect();
        {
            let jobs = shards
                .iter_mut()
                .zip(inboxes)
                .zip(&children)
                .zip(merge_out.iter_mut());
            if run_parallel {
                std::thread::scope(|sc| {
                    for (((store, inbox), child), out) in jobs {
                        sc.spawn(move || *out = Some(merge_shard(store, inbox, child)));
                    }
                });
            } else {
                for (((store, inbox), child), out) in jobs {
                    *out = Some(merge_shard(store, inbox, child));
                }
            }
        }
        let mut responses: Vec<(Tag, u32, u32, bool)> = Vec::new();
        let mut new_all: Vec<(Tag, u32)> = Vec::new();
        let mut new_counts = vec![0usize; nshards];
        for (k, slot) in merge_out.into_iter().enumerate() {
            let (resp, new_tags) = slot.expect("every shard merged");
            new_counts[k] = new_tags.len();
            responses.extend(resp.into_iter().map(|(t, l, n)| (t, k as u32, l, n)));
            new_all.extend(new_tags.into_iter().map(|t| (t, k as u32)));
        }
        responses.sort_unstable_by_key(|r| r.0);
        new_all.sort_unstable();

        // Phase 3: assign global ids to the budgeted prefix of the new
        // nodes (in tag order — the single-store insertion order) and pop
        // the over-budget suffix out of each shard. An over-memory-budget
        // level keeps nothing: the clean-truncation twin of `level_cap = 0`
        // in `explore_core`.
        let budget = if over_budget {
            0
        } else {
            opts.max_configs.saturating_sub(depth.len())
        };
        let kept = budget.min(new_all.len());
        // keep_limit[k]: locals of shard k below this index survive.
        let mut keep_limit: Vec<usize> = l2g.iter().map(Vec::len).collect();
        for &(_, k) in &new_all[..kept] {
            keep_limit[k as usize] += 1;
        }
        for (k, store) in shards.iter_mut().enumerate() {
            let dropped = new_counts[k] - (keep_limit[k] - l2g[k].len());
            if dropped > 0 {
                store.pop_last(dropped);
            }
        }

        // Phase 4: replay the responses in tag order against the global
        // bookkeeping — identical decision order to `explore_core`'s
        // sequential merge loop.
        let merge_t = rec.time_merge();
        let mut next: Vec<FrontItem> = Vec::new();
        let mut revisits: Vec<(usize, u64)> = Vec::new();
        let mut cursor = 0usize;
        for (seq, item) in frontier.iter().enumerate() {
            let exp = item_exps[seq].take().expect("every item expanded");
            let i = item.node as usize;
            if exp.terminal {
                terminals.push(i);
                expanded[i] = true;
                if let Some(eng) = engine.as_mut() {
                    let (hs, hl) = home[i];
                    eng.on_terminal(shards[hs as usize].terminal_facts(hl as usize));
                }
                continue;
            }
            let mut escalate = false;
            scratch.clear();
            rec.count_sleep_pruned(u64::from(exp.slept.count_ones()));
            for (si, (pid, succ_sleep)) in exp.steps.into_iter().enumerate() {
                let (t, sk, sl, is_new) = responses[cursor];
                cursor += 1;
                debug_assert_eq!(t, tag(seq as u32, si as u32));
                let (sk, sl) = (sk as usize, sl as usize);
                let (j, known) = if sl >= keep_limit[sk] {
                    // The owner resolved this occurrence to a node that
                    // fell beyond the configuration (or memory) budget.
                    rec.count_capped(1);
                    match mem_budget {
                        Some(b) if over_budget => rec.set_budget_truncated(b),
                        _ => rec.set_truncated(opts.max_configs),
                    }
                    truncated = true;
                    continue;
                } else if is_new {
                    rec.count_added(1);
                    let j = depth.len();
                    assert!(j < u32::MAX as usize, "state graph exceeds u32 node ids");
                    depth.push(cur_depth + 1);
                    first_sleep.push(succ_sleep);
                    explored.push(0);
                    slept.push(0);
                    pending.push(0);
                    expanded.push(false);
                    full.push(false);
                    debug_assert_eq!(l2g[sk].len(), sl);
                    l2g[sk].push(j as u32);
                    home.push((sk as u32, sl as u32));
                    next.push(FrontItem {
                        node: j as u32,
                        fire: 0,
                        sleep: 0,
                        fresh: true,
                    });
                    (j, false)
                } else {
                    rec.count_dedup_hits(1);
                    (l2g[sk][sl] as usize, true)
                };
                if known && depth[j] <= depth[i] {
                    if opts.por {
                        escalate = true;
                    }
                    if let Some(eng) = engine.as_mut() {
                        eng.on_retreating_edge();
                    }
                }
                if opts.por && known {
                    revisits.push((j, succ_sleep));
                }
                scratch.push(Edge { pid, to: j as u32 });
            }
            if opts.symmetry {
                scratch.sort_unstable_by_key(|e| (e.pid.index(), e.to));
                scratch.dedup();
            }
            shard_edges[home[i].0 as usize] += scratch.len();
            edge_buf.extend(scratch.drain(..).map(|e| (i as u32, e)));
            expanded[i] = true;
            explored[i] |= exp.fired;
            pending[i] &= !exp.fired;
            slept[i] = (slept[i] | exp.slept) & !explored[i];
            if opts.por && escalate && !full[i] {
                full[i] = true;
                let (hs, hl) = home[i];
                let enabled = shards[hs as usize].enabled_bits(hl as usize);
                let rest = enabled & !explored[i] & !pending[i];
                slept[i] = 0;
                if rest != 0 {
                    pending[i] |= rest;
                    next.push(FrontItem {
                        node: i as u32,
                        fire: rest,
                        sleep: 0,
                        fresh: false,
                    });
                }
            }
            rec.heartbeat(
                cur_depth,
                depth.len(),
                frontier.len(),
                opts.max_configs.saturating_sub(depth.len()),
            );
        }
        debug_assert_eq!(cursor, responses.len());
        for (j, new_sleep) in revisits {
            if !expanded[j] {
                first_sleep[j] &= new_sleep;
                continue;
            }
            let wake = slept[j] & !new_sleep;
            if wake != 0 {
                slept[j] &= !wake;
                pending[j] |= wake;
                next.push(FrontItem {
                    node: j as u32,
                    fire: wake,
                    sleep: new_sleep,
                    fresh: false,
                });
            }
        }
        drop(merge_t);
        rec.record_peak_bytes(shards.iter().map(|s| s.resident_estimate()).sum());
        // Level-granular verdict evaluation, mirroring `explore_core`:
        // the exit point — and the explored-config count — is identical
        // for every shard count.
        if let Some(eng) = engine.as_mut() {
            if eng.wants_cycle_check() {
                eng.record_cycle_check(edge_buf_has_cycle(depth.len(), &edge_buf));
            }
            early_exit = eng.refutation().is_some();
        }
        rec.record_level(
            frontier.len(),
            depth.len() - nodes_before,
            depth.len(),
            edge_buf.len(),
            t_level.map_or(Duration::ZERO, |t| t.elapsed()),
        );
        rec.heartbeat(
            cur_depth,
            depth.len(),
            next.len(),
            opts.max_configs.saturating_sub(depth.len()),
        );
        if early_exit {
            break;
        }
        frontier = next;
        cur_depth += 1;
    }
    terminals.sort_unstable();
    terminals.dedup();

    // Fold the per-shard phase timers into the main recorder as the
    // parallel critical path, and publish the per-shard breakdowns.
    rec.absorb_parallel(&children);
    let shard_metrics = children
        .iter()
        .enumerate()
        .map(|(k, child)| {
            let mut sm = child.shard_phases(k);
            sm.nodes = l2g[k].len();
            sm.edges = shard_edges[k];
            sm.sent = traffic_sent[k];
            sm.received = traffic_recv[k];
            sm.max_outbox = max_outbox[k];
            sm.outbox_flushes = outbox_flushes[k];
            sm
        })
        .collect();
    rec.set_shards(shard_metrics);

    let verdict = engine.map(|mut eng| {
        if !truncated && !early_exit && eng.needs_final_cycle_check() {
            // Same completion re-check as `explore_core`: a cycle through
            // an old retreating candidate may only have closed after that
            // candidate's level was checked.
            eng.record_cycle_check(edge_buf_has_cycle(depth.len(), &edge_buf));
        }
        eng.finish(
            truncated.then_some(opts.max_configs),
            early_exit,
            depth.len(),
        )
    });
    let edges = edge_buf.len();
    let (row_ptr, edge_arr) = if verdict.is_some() {
        // Verdict goal: nobody reads the CSR — skip the freeze entirely.
        (Vec::new(), Vec::new())
    } else {
        freeze_csr(depth.len(), edge_buf, rec)
    };
    Ok((
        GraphCore {
            row_ptr,
            edge_arr,
            terminals,
            truncated,
            edges,
            verdict,
        },
        home,
    ))
}

/// Sharded exploration with hash-consed nodes: seeds one [`CompactShard`]
/// per shard, runs the sharded BFS, then stitches the per-shard arenas
/// back into one interner (deduplicating shared states) and rewrites
/// every node's id row into a single global words array — the frozen
/// representation is identical in shape (and in
/// [`approx_bytes`](StateGraph::approx_bytes)) to a single-store
/// exploration's.
fn explore_sharded_compact(
    spec: &SystemSpec,
    init: &Config,
    nshards: usize,
    opts: &ExploreOptions,
    rec: &Recorder,
) -> Result<(NodeStore, GraphCore), SimError> {
    let nobjects = init.nobjects();
    let stride = nobjects + init.nprocs();
    // The root's owner is decided by its content fingerprint, which needs
    // an interner; use a throwaway arena.
    let fp = {
        let mut scratch = StateInterner::new();
        let cc = scratch.intern_config(init);
        scratch.content_fingerprint_words(nobjects, cc.words())
    };
    let owner = shard_of_fingerprint(fp, nshards);
    let mut shards: Vec<CompactShard> = (0..nshards)
        .map(|_| CompactShard::new(spec, nobjects, stride))
        .collect();
    if opts.effective_store() == StoreBackend::Disk {
        // The hot-tier budget bounds the whole exploration, so each shard
        // gets an equal slice of it.
        let budget = opts
            .effective_store_budget()
            .unwrap_or(DEFAULT_DISK_BUDGET)
            .div_euclid(nshards)
            .max(1);
        for shard in &mut shards {
            shard.enable_spill(budget);
        }
        rec.mark_store_active();
    }
    shards[owner].seed(init, fp);
    let (core, home) = explore_sharded(&mut shards, owner, opts, rec)?;
    if core.verdict.is_some() {
        // Verdict goal: node contents are never read again, so the arena
        // stitch — this path's freeze phase — is skipped entirely (the
        // spills drop with the shards, removing their run directories).
        return Ok((NodeStore::Virtual { len: home.len() }, core));
    }
    let _t = rec.time_freeze();
    // Reconstitute each shard fully in memory before the stitch: arenas
    // are append-only and ids never move, so the unspilled shard is
    // bit-identical to an in-memory exploration's.
    for shard in &mut shards {
        shard.unspill(rec);
    }
    let mut interner = StateInterner::new();
    let remaps: Vec<(Vec<u32>, Vec<u32>)> = shards
        .iter()
        .map(|s| interner.absorb_arenas(&s.interner))
        .collect();
    let mut words = Vec::with_capacity(home.len() * stride);
    for &(s, l) in &home {
        let (omap, pmap) = &remaps[s as usize];
        let row = shards[s as usize].row(l as usize);
        words.extend(row.iter().enumerate().map(|(slot, &w)| {
            if slot < nobjects {
                omap[w as usize]
            } else {
                pmap[w as usize]
            }
        }));
    }
    Ok((
        NodeStore::Interned(Box::new(InternedNodes {
            interner,
            nobjects,
            stride,
            words,
            len: home.len(),
        })),
        core,
    ))
}

/// Sharded exploration with deep nodes: the per-shard `Config` arenas are
/// gathered into one global-id-ordered vector at freeze time (moves, no
/// deep copies).
fn explore_sharded_deep(
    spec: &SystemSpec,
    init: Config,
    nshards: usize,
    opts: &ExploreOptions,
    rec: &Recorder,
) -> Result<(NodeStore, GraphCore), SimError> {
    let fp = fingerprint(&init);
    let owner = shard_of_fingerprint(fp, nshards);
    let mut shards: Vec<DeepShard> = (0..nshards).map(|_| DeepShard::new(spec)).collect();
    shards[owner].seed(init, fp);
    let (core, home) = explore_sharded(&mut shards, owner, opts, rec)?;
    if core.verdict.is_some() {
        // Verdict goal: skip the arena gather, as in the compact path.
        return Ok((NodeStore::Virtual { len: home.len() }, core));
    }
    let _t = rec.time_freeze();
    let mut arenas: Vec<Vec<Option<Config>>> = shards
        .into_iter()
        .map(|s| s.configs.into_iter().map(Some).collect())
        .collect();
    let configs = home
        .iter()
        .map(|&(s, l)| {
            arenas[s as usize][l as usize]
                .take()
                .expect("every node has one home")
        })
        .collect();
    Ok((NodeStore::Deep(configs), core))
}

impl StateGraph {
    /// Exhaustively explores `spec` from its initial configuration,
    /// breadth-first. With `opts.threads > 1` each depth level is expanded
    /// in parallel; the merge order makes the resulting graph identical
    /// node-for-node to the sequential one.
    ///
    /// With `opts.symmetry`, the result is the **orbit-quotient** graph:
    /// every configuration is replaced by the canonical representative of
    /// its orbit under the system's [symmetry
    /// groups](subconsensus_sim::SystemSpec::symmetry_groups) before dedup,
    /// so whole orbits collapse to single nodes. Because within-group
    /// permutations are automorphisms of the full graph, the quotient
    /// preserves reachability of any permutation-closed property —
    /// decided-value sets, bivalence, termination, cycles — which is what
    /// the valency and wait-freedom analyses consume. Edges carry the pid
    /// that stepped *from the representative*, so a
    /// [`witness_schedule`](Self::witness_schedule) drawn from a quotient
    /// graph reaches the predicate only up to a within-group renaming of
    /// processes when replayed against the concrete system.
    ///
    /// With `opts.por`, the result is a **partial-order-reduced** subgraph
    /// (see the module docs): it reaches exactly the same terminal
    /// configurations, preserving the `properties.rs` verdicts and the
    /// root valence, through fewer interior configurations and strictly
    /// fewer redundant interleavings. Interior valences are *not*
    /// preserved, so `find_critical` rejects such graphs. POR composes
    /// with `symmetry` (pruning happens first, canonicalization second)
    /// and with `threads` (all reduction decisions are made in the
    /// sequential merge, so the graph stays thread-count independent).
    ///
    /// If the bound in `opts` is hit, the returned graph is marked
    /// [`truncated`](Self::is_truncated) and all analyses on it are partial.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised while stepping.
    pub fn explore(spec: &SystemSpec, opts: &ExploreOptions) -> Result<Self, SimError> {
        Self::explore_with(spec, opts, &Recorder::from_env(opts.metrics))
    }

    /// [`explore`](Self::explore) with an explicit telemetry [`Recorder`]
    /// (progress callbacks, trace sinks, forced timing — see the
    /// `Recorder` builders). The recorder is write-only from the
    /// explorer's point of view, so the produced graph is node-for-node
    /// identical to an uninstrumented exploration; the final snapshot is
    /// available as [`metrics`](Self::metrics) (and through
    /// [`Recorder::snapshot`] on `rec` itself).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised while stepping.
    pub fn explore_with(
        spec: &SystemSpec,
        opts: &ExploreOptions,
        rec: &Recorder,
    ) -> Result<Self, SimError> {
        // Wall-clock start for the run ledger (the recorder's own clock is
        // monotonic); read only when a ledger is installed.
        let started_unix_ms = if rec.run_log().is_some() {
            unix_time_ms()
        } else {
            0
        };
        let mut opts = opts.clone();
        // Fast path: a system whose symmetry groups are all singletons has
        // an identity canonicalization, so requesting symmetry would only
        // burn time re-checking sortedness and re-sorting edges. Normalize
        // the flag once; everything downstream branches on the effective
        // value.
        opts.symmetry = opts.symmetry && !spec.symmetry_groups().is_trivial();
        let init = if opts.symmetry {
            spec.canonicalize_config(spec.initial_config())
        } else {
            spec.initial_config()
        };
        let nshards = opts.effective_shards();
        if opts.effective_store() == StoreBackend::Disk && !opts.interned {
            warn_disk_needs_interned();
        }
        let (store, core) = if nshards > 1 {
            if opts.interned {
                explore_sharded_compact(spec, &init, nshards, &opts, rec)?
            } else {
                explore_sharded_deep(spec, init, nshards, &opts, rec)?
            }
        } else if opts.interned {
            let mut store = CompactStore::new(spec, rec, &init);
            if opts.effective_store() == StoreBackend::Disk {
                store.enable_spill(opts.effective_store_budget().unwrap_or(DEFAULT_DISK_BUDGET));
                rec.mark_store_active();
            }
            let core = explore_core(&mut store, &opts, rec)?;
            // Reconstitute before freezing (bit-identical to an in-memory
            // run — arenas are append-only and ids never move); the spill
            // drops here, removing its run directory.
            store.unspill();
            let CompactStore {
                interner,
                nobjects,
                stride,
                words,
                len,
                ..
            } = store;
            (
                NodeStore::Interned(Box::new(InternedNodes {
                    interner,
                    nobjects,
                    stride,
                    words,
                    len,
                })),
                core,
            )
        } else {
            let mut store = DeepStore::new(spec, rec, init);
            let core = explore_core(&mut store, &opts, rec)?;
            (NodeStore::Deep(store.configs), core)
        };
        let mut graph = StateGraph {
            store,
            row_ptr: core.row_ptr,
            edge_arr: core.edge_arr,
            terminals: core.terminals,
            truncated: core.truncated,
            por: opts.por,
            metrics: ExploreMetrics::default(),
            verdict: core.verdict,
        };
        let mut metrics = rec.snapshot();
        metrics.configs = graph.len();
        // Under a verdict goal the CSR is never frozen; `core.edges`
        // keeps the true recorded edge count either way.
        metrics.edges = core.edges;
        // Peak residency: the larger of the per-level store estimates
        // recorded during exploration and the frozen graph's footprint
        // (the estimates cover rows + arenas + index, which the frozen
        // footprint alone understated before).
        metrics.peak_bytes = metrics.peak_bytes.max(graph.approx_bytes());
        graph.metrics = metrics;
        if graph.truncated {
            if let TruncationCause::MemoryBudget { budget } = graph.metrics.truncation {
                warn_budget_truncated(budget, graph.len());
            } else {
                warn_truncated(opts.max_configs, graph.len());
            }
        }
        // Persistent observability, strictly after the graph is complete so
        // instrumented and uninstrumented runs stay node-for-node identical:
        // the terminal status snapshot, then one ledger line.
        rec.finalize_status(graph.len());
        if rec.run_log().is_some() {
            let outcome = match &graph.verdict {
                Some(v) => format!("{{\"kind\": \"verdict\", \"verdict\": {}}}", v.to_json()),
                None => format!(
                    "{{\"kind\": \"graph\", \"configs\": {}, \"edges\": {}, \
                     \"terminals\": {}, \"truncated\": {}}}",
                    graph.len(),
                    graph.metrics.edges,
                    graph.terminals.len(),
                    graph.truncated
                ),
            };
            rec.append_run_record(&RunRecord {
                spec_hash: spec.spec_fingerprint(),
                started_unix_ms,
                ended_unix_ms: unix_time_ms(),
                git_revision: git_revision().to_string(),
                options_json: opts.to_json(),
                outcome_json: outcome,
                metrics_json: graph.metrics.to_json(),
            });
        }
        Ok(graph)
    }

    /// The telemetry snapshot of the exploration that built this graph:
    /// counters and per-level records always, phase wall times when the
    /// exploration was instrumented ([`ExploreOptions::metrics`], an
    /// explicit [`Recorder`], or `MC_PROGRESS`/`MC_TRACE`).
    pub fn metrics(&self) -> &ExploreMetrics {
        &self.metrics
    }

    /// Returns the number of distinct reachable configurations.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` if the graph has no configurations (never happens for a
    /// successfully explored system, which always has the initial one).
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Returns `true` if the exploration hit its bound.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Returns `true` if this graph was explored with partial-order
    /// reduction ([`ExploreOptions::por`]): a sound *subgraph* of the full
    /// graph that preserves terminals, the `properties.rs` verdicts and the
    /// root valence, but not interior valences (so `find_critical` rejects
    /// it).
    pub fn is_por_reduced(&self) -> bool {
        self.por
    }

    /// The streaming verdict accumulated during an
    /// [`ExploreGoal::Verdict`] exploration; `None` for a
    /// [`ExploreGoal::FullGraph`] one.
    pub fn verdict(&self) -> Option<&StreamingVerdict> {
        self.verdict.as_ref()
    }

    /// Returns `true` if this graph was explored under
    /// [`ExploreGoal::Verdict`]: the streaming verdict is available via
    /// [`verdict`](Self::verdict), but the CSR adjacency was never frozen
    /// (and the exploration may have stopped at the first refutation), so
    /// every graph-structure analysis — [`edges`](Self::edges),
    /// [`reverse_csr`](Self::reverse_csr), [`has_cycle`](Self::has_cycle),
    /// [`witness_schedule`](Self::witness_schedule), [`stats`](Self::stats),
    /// DOT export, `find_critical` — panics with a clear message instead
    /// of indexing empty CSR arrays.
    pub fn is_verdict_only(&self) -> bool {
        self.verdict.is_some()
    }

    /// Panics with an actionable message when a CSR-consuming analysis is
    /// called on a verdict-only graph.
    fn require_csr(&self, what: &str) {
        assert!(
            !self.is_verdict_only(),
            "StateGraph::{what} needs the frozen CSR adjacency, but this \
             graph was explored under ExploreGoal::Verdict, which skips the \
             freeze and reverse-CSR phases (and may stop exploring at the \
             first refutation); re-explore with ExploreGoal::FullGraph to \
             run graph-structure analyses",
        );
    }

    /// An id-native [`NodeView`] of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range, or on a *sharded* verdict-only
    /// graph (whose node contents were never gathered).
    pub fn node(&self, index: usize) -> NodeView<'_> {
        assert!(index < self.store.len(), "node index out of range");
        assert!(
            !matches!(self.store, NodeStore::Virtual { .. }),
            "node contents of a sharded ExploreGoal::Verdict exploration \
             are never gathered; re-explore with ExploreGoal::FullGraph to \
             inspect configurations",
        );
        NodeView { graph: self, index }
    }

    /// Returns the configuration at `index`.
    ///
    /// Owned because the interned representation materializes it from id
    /// words on demand; either way the cost is per-slot `Arc` clones, no
    /// state is deep-copied.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn config(&self, index: usize) -> Config {
        match &self.store {
            NodeStore::Deep(configs) => configs[index].clone(),
            NodeStore::Interned(nodes) => {
                assert!(index < nodes.len, "node index out of range");
                nodes.interner.materialize_words(
                    nodes.nobjects,
                    &nodes.words[index * nodes.stride..(index + 1) * nodes.stride],
                )
            }
            NodeStore::Virtual { .. } => panic!(
                "node contents of a sharded ExploreGoal::Verdict exploration \
                 are never gathered; re-explore with ExploreGoal::FullGraph \
                 to inspect configurations",
            ),
        }
    }

    /// Interner statistics of a hash-consed exploration
    /// ([`ExploreOptions::interned`]): arena sizes, hit rates and footprint.
    /// `None` for a deep-representation graph.
    pub fn interner_stats(&self) -> Option<InternerStats> {
        match &self.store {
            NodeStore::Deep(_) => None,
            NodeStore::Interned(nodes) => Some(nodes.interner.stats()),
            NodeStore::Virtual { .. } => None,
        }
    }

    /// Returns the outgoing edges of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn edges(&self, index: usize) -> &[Edge] {
        self.require_csr("edges");
        let lo = self.row_ptr[index] as usize;
        let hi = self.row_ptr[index + 1] as usize;
        &self.edge_arr[lo..hi]
    }

    /// Returns the indices of the final configurations (no process enabled).
    pub fn terminals(&self) -> &[usize] {
        &self.terminals
    }

    /// Approximate resident bytes of the frozen graph: the node arena (per
    /// node, a `Config` struct plus its pointer arrays for the deep
    /// representation, or `stride` id words plus the interner's hash
    /// tables and unique states for the interned one — shared deep states
    /// are excluded for the deep representation, being `Arc`-shared
    /// across nodes), the CSR arrays and the terminal list.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let nodes = match &self.store {
            NodeStore::Deep(configs) => {
                let per_config = size_of::<Config>()
                    + configs
                        .first()
                        .map_or(0, |c| (c.nobjects() + c.nprocs()) * size_of::<usize>());
                configs.len() * per_config
            }
            NodeStore::Interned(nodes) => {
                // The interner IS this representation's state storage, so
                // its tables and unique states are part of the honest
                // footprint (they drive the disk store's eviction too).
                let s = nodes.interner.stats();
                nodes.words.len() * size_of::<u32>() + s.table_bytes + s.state_bytes
            }
            NodeStore::Virtual { .. } => 0,
        };
        nodes
            + self.row_ptr.len() * size_of::<u32>()
            + self.edge_arr.len() * size_of::<Edge>()
            + self.terminals.len() * size_of::<usize>()
    }

    /// Builds the reverse (predecessor) adjacency of the graph in CSR form:
    /// `row_ptr[j]..row_ptr[j + 1]` indexes node `j`'s slice of a flat
    /// predecessor-node array. Parallel edges are kept, so the predecessor
    /// multiset mirrors the forward edge multiset exactly.
    ///
    /// One O(nodes + edges) counting sort; backward passes (valency
    /// propagation, non-blocking pruning) consume this instead of
    /// rescanning the forward adjacency per iteration.
    pub fn reverse_csr(&self) -> (Vec<u32>, Vec<u32>) {
        self.require_csr("reverse_csr");
        let n = self.len();
        let mut row_ptr = vec![0u32; n + 1];
        for e in &self.edge_arr {
            row_ptr[e.target() + 1] += 1;
        }
        for k in 0..n {
            row_ptr[k + 1] += row_ptr[k];
        }
        let mut cursor: Vec<u32> = row_ptr[..n].to_vec();
        let mut preds = vec![0u32; self.edge_arr.len()];
        for i in 0..n {
            for e in self.edges(i) {
                let c = &mut cursor[e.target()];
                preds[*c as usize] = i as u32;
                *c += 1;
            }
        }
        (row_ptr, preds)
    }

    /// Computes summary statistics of the graph.
    pub fn stats(&self) -> GraphStats {
        self.require_csr("stats");
        use std::collections::VecDeque;
        let n = self.store.len();
        let max_out_degree = (0..n)
            .map(|i| (self.row_ptr[i + 1] - self.row_ptr[i]) as usize)
            .max()
            .unwrap_or(0);
        // BFS depth from the initial configuration.
        let mut depth = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        depth[0] = 0;
        queue.push_back(0usize);
        let mut max_depth = 0;
        while let Some(i) = queue.pop_front() {
            for e in self.edges(i) {
                if depth[e.target()] == usize::MAX {
                    depth[e.target()] = depth[i] + 1;
                    max_depth = max_depth.max(depth[e.target()]);
                    queue.push_back(e.target());
                }
            }
        }
        GraphStats {
            configs: n,
            edges: self.edge_arr.len(),
            terminals: self.terminals.len(),
            max_out_degree,
            max_depth,
            truncated: self.truncated,
        }
    }

    /// Returns a schedule (sequence of stepping pids) leading from the
    /// initial configuration to the first (BFS-closest) node satisfying
    /// `pred`, or `None` if no reachable configuration satisfies it.
    ///
    /// The returned schedule can be replayed with
    /// [`ReplayScheduler`](subconsensus_sim::ReplayScheduler) to reproduce
    /// the configuration in a normal run — this is how counterexamples
    /// (e.g. a disagreeing consensus schedule) are surfaced to users.
    ///
    /// The predicate receives an id-native [`NodeView`], so probing every
    /// node costs id lookups, not a deep `Config` materialization per
    /// probe ([`NodeView::config`] is still there when the whole
    /// configuration is needed).
    pub fn witness_schedule<F>(&self, pred: F) -> Option<Vec<Pid>>
    where
        F: Fn(&NodeView<'_>) -> bool,
    {
        self.require_csr("witness_schedule");
        use std::collections::VecDeque;
        // parent[i] = (predecessor node, pid that stepped), for BFS tree.
        let mut parent: Vec<Option<(usize, Pid)>> = vec![None; self.store.len()];
        let mut seen = vec![false; self.store.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        while let Some(i) = queue.pop_front() {
            if pred(&self.node(i)) {
                // Reconstruct the schedule back to the root.
                let mut schedule = Vec::new();
                let mut cur = i;
                while let Some((prev, pid)) = parent[cur] {
                    schedule.push(pid);
                    cur = prev;
                }
                schedule.reverse();
                return Some(schedule);
            }
            for e in self.edges(i) {
                if !seen[e.target()] {
                    seen[e.target()] = true;
                    parent[e.target()] = Some((i, e.pid));
                    queue.push_back(e.target());
                }
            }
        }
        None
    }

    /// Returns `true` if the configuration graph contains a directed cycle.
    ///
    /// No cycle means every execution of the system is finite; since a
    /// process that keeps taking steps in a finite acyclic execution space
    /// must reach a decision, acyclicity witnesses wait-freedom for
    /// bounded protocols.
    pub fn has_cycle(&self) -> bool {
        self.require_csr("has_cycle");
        // Iterative three-color DFS.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.store.len();
        let mut color = vec![WHITE; n];
        for root in 0..n {
            if color[root] != WHITE {
                continue;
            }
            // Stack of (node, next-edge-index).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            while let Some(&mut (node, ref mut ei)) = stack.last_mut() {
                let edges = self.edges(node);
                if *ei < edges.len() {
                    let to = edges[*ei].target();
                    *ei += 1;
                    match color[to] {
                        WHITE => {
                            color[to] = GRAY;
                            stack.push((to, 0));
                        }
                        GRAY => return true,
                        _ => {}
                    }
                } else {
                    color[node] = BLACK;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Renders the graph in Graphviz DOT form: one node line per
    /// configuration (the root bold, terminals double-circled) and one
    /// edge line per CSR edge, labeled with the stepping pid. Meant for
    /// small (reduced) graphs — the first human-readable view of an
    /// explored quotient.
    pub fn to_dot(&self) -> String {
        self.require_csr("to_dot");
        self.render_dot(&[])
    }

    /// [`to_dot`](Self::to_dot) with the edges along `schedule` (a witness
    /// schedule, walked from the root by firing each pid's first matching
    /// edge) highlighted in red.
    pub fn to_dot_with_schedule(&self, schedule: &[Pid]) -> String {
        self.require_csr("to_dot_with_schedule");
        let mut highlight = vec![false; self.edge_arr.len()];
        let mut cur = 0usize;
        for &pid in schedule {
            let lo = self.row_ptr[cur] as usize;
            let hi = self.row_ptr[cur + 1] as usize;
            let Some(k) = (lo..hi).find(|&k| self.edge_arr[k].pid == pid) else {
                break;
            };
            highlight[k] = true;
            cur = self.edge_arr[k].target();
        }
        self.render_dot(&highlight)
    }

    fn render_dot(&self, highlight: &[bool]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("digraph stategraph {\n  rankdir=LR;\n  node [shape=circle];\n");
        let mut is_terminal = vec![false; self.len()];
        for &t in &self.terminals {
            is_terminal[t] = true;
        }
        for (i, &term) in is_terminal.iter().enumerate() {
            let shape = if term { " shape=doublecircle" } else { "" };
            let style = if i == 0 { " style=bold" } else { "" };
            let _ = writeln!(out, "  n{i} [label=\"{i}\"{shape}{style}];");
        }
        for i in 0..self.len() {
            for k in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                let e = self.edge_arr[k];
                let extra = if highlight.get(k).copied().unwrap_or(false) {
                    " color=red penwidth=2"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "  n{i} -> n{} [label=\"p{}\"{extra}];",
                    e.target(),
                    e.pid.index()
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subconsensus_sim::{
        Action, ObjId, ObjectError, ObjectSpec, Op, Outcome, ProcCtx, Protocol, ProtocolError,
        SystemBuilder, Value,
    };

    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => Ok(vec![Outcome::ret(
                    op.arg(0).cloned().unwrap_or(Value::Nil),
                    Value::Nil,
                )]),
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// Write your input, read, decide what you read.
    #[derive(Debug)]
    struct WriteReadDecide {
        reg: ObjId,
    }

    impl Protocol for WriteReadDecide {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(Action::invoke(
                    Value::Int(1),
                    self.reg,
                    Op::unary("write", ctx.input.clone()),
                )),
                Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
                _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
            }
        }
    }

    /// Loop forever re-reading.
    #[derive(Debug)]
    struct Spinner {
        reg: ObjId,
    }

    impl Protocol for Spinner {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.reg, Op::new("read")))
        }
    }

    fn race_spec(nprocs: usize) -> subconsensus_sim::SystemSpec {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p = Arc::new(WriteReadDecide { reg });
        for i in 0..nprocs {
            b.add_process(p.clone(), Value::Int(i as i64 + 1));
        }
        b.build()
    }

    /// Two register-backed WriteReadDecide processes per block, each block
    /// on its own register, with declared footprints — the shape POR's
    /// static conflict components reduce.
    fn blocked_spec(blocks: usize) -> subconsensus_sim::SystemSpec {
        #[derive(Debug)]
        struct BlockedWrd {
            reg: ObjId,
        }

        impl Protocol for BlockedWrd {
            fn start(&self, _ctx: &ProcCtx) -> Value {
                Value::Int(0)
            }

            fn step(
                &self,
                ctx: &ProcCtx,
                local: &Value,
                resp: Option<&Value>,
            ) -> Result<Action, ProtocolError> {
                match local.as_int() {
                    Some(0) => Ok(Action::invoke(
                        Value::Int(1),
                        self.reg,
                        Op::unary("write", ctx.input.clone()),
                    )),
                    Some(1) => Ok(Action::invoke(Value::Int(2), self.reg, Op::new("read"))),
                    _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
                }
            }

            fn obj_footprint(&self, _ctx: &ProcCtx) -> Option<Vec<ObjId>> {
                Some(vec![self.reg])
            }
        }

        let mut b = SystemBuilder::new();
        for blk in 0..blocks {
            let reg = b.add_object(Reg);
            let p = Arc::new(BlockedWrd { reg });
            for i in 0..2 {
                b.add_process(p.clone(), Value::Int((2 * blk + i) as i64 + 1));
            }
        }
        b.build()
    }

    #[test]
    fn solo_graph_is_a_path() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        assert_eq!(g.len(), 4, "init, wrote, read, decided");
        assert_eq!(g.terminals().len(), 1);
        assert!(!g.has_cycle());
        assert!(!g.is_truncated());
        assert!(!g.is_empty());
        assert!(!g.is_por_reduced());
    }

    #[test]
    fn two_process_race_has_multiple_terminals() {
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        assert!(
            g.terminals().len() > 1,
            "different interleavings end differently"
        );
        assert!(!g.has_cycle());
        // Every terminal has both processes decided on some written value.
        for &t in g.terminals() {
            let decided = g.config(t).decided_values();
            assert!(!decided.is_empty());
            for v in decided {
                assert!(v == Value::Int(1) || v == Value::Int(2));
            }
        }
    }

    #[test]
    fn spinner_produces_a_cycle() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Spinner { reg }), Value::Nil);
        let spec = b.build();
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(g.has_cycle());
        assert!(g.terminals().is_empty());
    }

    #[test]
    fn truncation_is_reported() {
        let g = StateGraph::explore(&race_spec(3), &ExploreOptions::with_max_configs(5)).unwrap();
        assert!(g.is_truncated());
        assert!(g.len() <= 5);
    }

    #[test]
    fn stats_summarize_the_graph() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        let s = g.stats();
        assert_eq!(s.configs, 4);
        assert_eq!(s.edges, 3, "a solo path");
        assert_eq!(s.terminals, 1);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_depth, 3);
        assert!(!s.truncated);
        assert!(s.to_string().contains("4 configs"));

        let g2 = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let s2 = g2.stats();
        assert!(s2.max_out_degree >= 2, "two processes can both step");
        assert_eq!(s2.max_depth, 6, "every full execution takes 6 steps");
    }

    #[test]
    fn approx_bytes_scales_with_the_graph() {
        let small = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        let large = StateGraph::explore(&race_spec(3), &ExploreOptions::default()).unwrap();
        assert!(small.approx_bytes() > 0);
        assert!(large.approx_bytes() > small.approx_bytes());
    }

    #[test]
    fn witness_schedule_reaches_and_replays() {
        use subconsensus_sim::{run, FirstOutcome, ReplayScheduler, RunOptions, Value as V};
        let spec = race_spec(2);
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        // Find a terminal where P0 decided 2 (it read P1's later write).
        let schedule = g
            .witness_schedule(|c| c.is_final() && c.decisions()[0] == Some(V::Int(2)))
            .expect("such a schedule exists");
        // Replay it in a normal run and observe the same outcome.
        let mut sched = ReplayScheduler::new(schedule);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).unwrap();
        assert_eq!(out.decisions()[0], Some(V::Int(2)));
    }

    #[test]
    fn witness_schedule_for_initial_config_is_empty() {
        let g = StateGraph::explore(&race_spec(1), &ExploreOptions::default()).unwrap();
        assert_eq!(g.witness_schedule(|_| true), Some(vec![]));
        assert_eq!(g.witness_schedule(|_| false), None);
    }

    #[test]
    fn edges_record_stepping_pid() {
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let pids: std::collections::HashSet<_> = g.edges(0).iter().map(|e| e.pid).collect();
        assert_eq!(pids.len(), 2, "both processes can step initially");
    }

    #[test]
    fn parallel_exploration_is_node_for_node_identical() {
        let spec = race_spec(3);
        let base = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        assert!(base.len() > 100, "a nontrivial graph");
        for threads in [2usize, 3, 4, 8] {
            let opts = ExploreOptions::default().with_threads(threads);
            let g = StateGraph::explore(&spec, &opts).unwrap();
            assert_eq!(g.len(), base.len(), "{threads} threads");
            for i in 0..base.len() {
                assert_eq!(g.config(i), base.config(i), "node {i} at {threads} threads");
                assert_eq!(
                    g.edges(i),
                    base.edges(i),
                    "edges of {i} at {threads} threads"
                );
            }
            assert_eq!(g.terminals(), base.terminals(), "{threads} threads");
            assert_eq!(g.is_truncated(), base.is_truncated());
        }
    }

    #[test]
    fn truncated_parallel_exploration_matches_sequential() {
        let spec = race_spec(3);
        let seq = ExploreOptions::with_max_configs(40);
        let par = ExploreOptions::with_max_configs(40).with_threads(4);
        let a = StateGraph::explore(&spec, &seq).unwrap();
        let b = StateGraph::explore(&spec, &par).unwrap();
        assert!(a.is_truncated() && b.is_truncated());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.config(i), b.config(i));
            assert_eq!(a.edges(i), b.edges(i));
        }
        assert_eq!(a.terminals(), b.terminals());
    }

    /// Sorted terminal configurations, for comparing graphs whose node
    /// numbering differs (full vs POR-reduced).
    fn terminal_configs(g: &StateGraph) -> Vec<Config> {
        let mut t: Vec<Config> = g.terminals().iter().map(|&i| g.config(i)).collect();
        t.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        t
    }

    #[test]
    fn por_preserves_terminals_exactly() {
        for spec in [race_spec(2), race_spec(3), blocked_spec(2)] {
            let full = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
            let red =
                StateGraph::explore(&spec, &ExploreOptions::default().with_por(true)).unwrap();
            assert!(red.is_por_reduced());
            assert!(!red.is_truncated());
            assert!(red.len() <= full.len());
            assert!(red.stats().edges <= full.stats().edges);
            assert_eq!(terminal_configs(&red), terminal_configs(&full));
        }
    }

    #[test]
    fn por_reduces_statically_independent_blocks() {
        // Two 2-process blocks on disjoint registers with declared
        // footprints: the blocks interleave freely in the full graph, but
        // POR serializes them.
        let spec = blocked_spec(2);
        let full = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        let red = StateGraph::explore(&spec, &ExploreOptions::default().with_por(true)).unwrap();
        assert!(
            2 * red.len() <= full.len(),
            "reduced {} vs full {}: expected ≤ 1/2",
            red.len(),
            full.len()
        );
        assert!(red.stats().edges < full.stats().edges);
    }

    #[test]
    fn por_exploration_is_thread_count_independent() {
        let spec = blocked_spec(2);
        let base = StateGraph::explore(&spec, &ExploreOptions::default().with_por(true)).unwrap();
        for threads in [2usize, 4, 8] {
            let opts = ExploreOptions::default()
                .with_por(true)
                .with_threads(threads);
            let g = StateGraph::explore(&spec, &opts).unwrap();
            assert_eq!(g.len(), base.len(), "{threads} threads");
            for i in 0..base.len() {
                assert_eq!(g.config(i), base.config(i), "node {i} at {threads} threads");
                assert_eq!(g.edges(i), base.edges(i), "edges {i} at {threads} threads");
            }
            assert_eq!(g.terminals(), base.terminals());
        }
    }

    #[test]
    fn por_keeps_cycles_detectable() {
        // A spinner (cyclic) plus a decider: the proviso must keep the
        // spin cycle in the reduced graph.
        #[derive(Debug)]
        struct DecideNow;
        impl Protocol for DecideNow {
            fn start(&self, _ctx: &ProcCtx) -> Value {
                Value::Nil
            }
            fn step(
                &self,
                ctx: &ProcCtx,
                _local: &Value,
                _resp: Option<&Value>,
            ) -> Result<Action, ProtocolError> {
                Ok(Action::Decide(ctx.input.clone()))
            }
        }
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Spinner { reg }), Value::Nil);
        b.add_process(Arc::new(DecideNow), Value::Int(1));
        let spec = b.build();
        let full = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        let red = StateGraph::explore(&spec, &ExploreOptions::default().with_por(true)).unwrap();
        assert!(full.has_cycle());
        assert!(red.has_cycle(), "the proviso must not lose the cycle");
        assert_eq!(terminal_configs(&red), terminal_configs(&full));
    }

    /// Every (symmetry, por) combination: the interned explorer must be
    /// node-for-node, edge-for-edge identical to the deep one.
    #[test]
    fn interned_exploration_matches_deep_representation() {
        for spec in [race_spec(2), race_spec(3), blocked_spec(2)] {
            for symmetry in [false, true] {
                for por in [false, true] {
                    let base = ExploreOptions::default()
                        .with_symmetry(symmetry)
                        .with_por(por);
                    let deep =
                        StateGraph::explore(&spec, &base.clone().with_interned(false)).unwrap();
                    let compact = StateGraph::explore(&spec, &base.with_interned(true)).unwrap();
                    assert!(compact.interner_stats().is_some());
                    assert!(deep.interner_stats().is_none());
                    assert_eq!(compact.len(), deep.len(), "sym={symmetry} por={por}");
                    for i in 0..deep.len() {
                        assert_eq!(
                            compact.config(i),
                            deep.config(i),
                            "node {i} sym={symmetry} por={por}"
                        );
                        assert_eq!(
                            compact.edges(i),
                            deep.edges(i),
                            "edges {i} sym={symmetry} por={por}"
                        );
                    }
                    assert_eq!(compact.terminals(), deep.terminals());
                    assert_eq!(compact.is_truncated(), deep.is_truncated());
                    // The id rows must be strictly smaller than the deep
                    // pointer arrays (same CSR on both sides).
                    assert!(compact.approx_bytes() < deep.approx_bytes());
                }
            }
        }
    }

    #[test]
    fn truncated_interned_exploration_matches_deep() {
        let spec = race_spec(3);
        let deep = StateGraph::explore(
            &spec,
            &ExploreOptions::with_max_configs(40).with_interned(false),
        )
        .unwrap();
        let compact = StateGraph::explore(
            &spec,
            &ExploreOptions::with_max_configs(40).with_interned(true),
        )
        .unwrap();
        assert!(deep.is_truncated() && compact.is_truncated());
        assert_eq!(deep.len(), compact.len());
        for i in 0..deep.len() {
            assert_eq!(deep.config(i), compact.config(i));
            assert_eq!(deep.edges(i), compact.edges(i));
        }
    }

    #[test]
    fn interner_stats_reflect_sharing() {
        let g = StateGraph::explore(&race_spec(3), &ExploreOptions::default()).unwrap();
        let stats = g.interner_stats().expect("interned by default");
        assert!(stats.proc_states > 0);
        assert!(stats.object_states > 0);
        // Far fewer distinct states than config slots: that's the point.
        assert!(stats.proc_states + stats.object_states < g.len());
        assert!(stats.hit_rate() > 0.5, "hit rate {}", stats.hit_rate());
    }

    #[test]
    fn reverse_csr_inverts_the_forward_adjacency() {
        let g = StateGraph::explore(&race_spec(3), &ExploreOptions::default()).unwrap();
        let (ptr, preds) = g.reverse_csr();
        assert_eq!(ptr.len(), g.len() + 1);
        assert_eq!(preds.len(), g.stats().edges);
        // Each forward edge appears exactly once as a reverse entry.
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for i in 0..g.len() {
            for e in g.edges(i) {
                expected.push((e.target(), i));
            }
        }
        expected.sort_unstable();
        let mut actual: Vec<(usize, usize)> = Vec::new();
        for j in 0..g.len() {
            for &p in &preds[ptr[j] as usize..ptr[j + 1] as usize] {
                actual.push((j, p as usize));
            }
        }
        actual.sort_unstable();
        assert_eq!(actual, expected);
    }

    /// A system whose symmetry groups are all singletons takes the
    /// fast path: requesting symmetry must yield the identical graph to
    /// not requesting it (canonicalization is the identity).
    #[test]
    fn trivial_symmetry_is_a_no_op_fast_path() {
        // race_spec gives every process a distinct input → singleton groups.
        let spec = race_spec(3);
        assert!(spec.symmetry_groups().is_trivial());
        let plain = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        let sym =
            StateGraph::explore(&spec, &ExploreOptions::default().with_symmetry(true)).unwrap();
        assert_eq!(plain.len(), sym.len());
        for i in 0..plain.len() {
            assert_eq!(plain.config(i), sym.config(i));
            assert_eq!(plain.edges(i), sym.edges(i));
        }
        assert_eq!(plain.terminals(), sym.terminals());
    }

    #[test]
    fn colliding_fingerprints_never_merge_distinct_configs() {
        // Cram every distinct configuration of a real graph into a single
        // fingerprint bucket (the worst possible hash) and verify lookup
        // still resolves each to exactly itself — dedup relies on full
        // equality, never the fingerprint alone.
        let g = StateGraph::explore(&race_spec(2), &ExploreOptions::default()).unwrap();
        let configs: Vec<Config> = (0..g.len()).map(|i| g.config(i)).collect();
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        index.insert(0, (0..configs.len()).collect());
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(lookup(&index, &configs, 0, c), Some(i));
        }
        // A configuration outside the arena is never claimed found, even
        // when the bucket lists every node.
        let foreign = race_spec(3).initial_config();
        assert_eq!(lookup(&index, &configs, 0, &foreign), None);
    }

    /// Two indistinguishable processes racing on one register: the one
    /// in-repo shape whose symmetry groups are nontrivial, so the
    /// canonicalize-then-fingerprint shard routing actually exercises
    /// orbit collapsing.
    fn symmetric_spec(nprocs: usize) -> subconsensus_sim::SystemSpec {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        let p = Arc::new(WriteReadDecide { reg });
        for _ in 0..nprocs {
            b.add_process(p.clone(), Value::Int(7));
        }
        b.build()
    }

    fn assert_graphs_identical(g: &StateGraph, base: &StateGraph, label: &str) {
        assert_eq!(g.len(), base.len(), "{label}");
        for i in 0..base.len() {
            assert_eq!(g.config(i), base.config(i), "node {i} {label}");
            assert_eq!(g.edges(i), base.edges(i), "edges of {i} {label}");
        }
        assert_eq!(g.terminals(), base.terminals(), "{label}");
        assert_eq!(g.is_truncated(), base.is_truncated(), "{label}");
    }

    #[test]
    fn sharded_exploration_is_shard_count_independent() {
        let spec = race_spec(3);
        for interned in [false, true] {
            let base = StateGraph::explore(
                &spec,
                &ExploreOptions::default()
                    .with_interned(interned)
                    .with_shards(1),
            )
            .unwrap();
            assert!(base.len() > 100, "a nontrivial graph");
            for shards in [2usize, 3, 4] {
                let opts = ExploreOptions::default()
                    .with_interned(interned)
                    .with_shards(shards);
                let g = StateGraph::explore(&spec, &opts).unwrap();
                assert_graphs_identical(&g, &base, &format!("{shards} shards interned={interned}"));
                // The freeze-time arena stitch must reproduce the exact
                // single-store representation, bytes included — the CI
                // bench guard diffs this across MC_SHARDS values.
                assert_eq!(
                    g.approx_bytes(),
                    base.approx_bytes(),
                    "{shards} shards interned={interned}"
                );
                assert_eq!(g.interner_stats().is_some(), interned);
            }
        }
    }

    #[test]
    fn sharded_por_symmetry_matrix_matches_unsharded() {
        for (name, spec) in [
            ("race3", race_spec(3)),
            ("blocked2", blocked_spec(2)),
            ("symmetric3", symmetric_spec(3)),
        ] {
            for symmetry in [false, true] {
                for por in [false, true] {
                    let base_opts = ExploreOptions::default()
                        .with_symmetry(symmetry)
                        .with_por(por);
                    let base = StateGraph::explore(&spec, &base_opts).unwrap();
                    for shards in [2usize, 4] {
                        let g = StateGraph::explore(&spec, &base_opts.clone().with_shards(shards))
                            .unwrap();
                        assert_graphs_identical(
                            &g,
                            &base,
                            &format!("{name} sym={symmetry} por={por} shards={shards}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_sharded_exploration_matches_unsharded() {
        let spec = race_spec(3);
        for interned in [false, true] {
            let base_opts = ExploreOptions::with_max_configs(40).with_interned(interned);
            let base = StateGraph::explore(&spec, &base_opts).unwrap();
            assert!(base.is_truncated());
            for shards in [2usize, 4] {
                let g = StateGraph::explore(&spec, &base_opts.clone().with_shards(shards)).unwrap();
                assert_graphs_identical(
                    &g,
                    &base,
                    &format!("cap=40 interned={interned} shards={shards}"),
                );
            }
        }
    }

    #[test]
    fn sharded_metrics_report_per_shard_breakdowns() {
        let spec = race_spec(3);
        let opts = ExploreOptions::default().with_shards(4).with_metrics(true);
        let g = StateGraph::explore(&spec, &opts).unwrap();
        let shards = &g.metrics().shards;
        assert_eq!(shards.len(), 4);
        assert_eq!(
            shards.iter().map(|s| s.nodes).sum::<usize>(),
            g.len(),
            "every node has exactly one owning shard"
        );
        assert_eq!(
            shards.iter().map(|s| s.edges).sum::<usize>(),
            g.stats().edges,
            "every edge is attributed to its source's owner"
        );
        assert_eq!(
            shards.iter().map(|s| s.sent).sum::<u64>(),
            shards.iter().map(|s| s.received).sum::<u64>(),
            "routed successors all arrive somewhere"
        );
        assert!(shards.iter().filter(|s| s.nodes > 0).count() > 1);
        // Unsharded runs publish no per-shard rows.
        let g1 = StateGraph::explore(&spec, &ExploreOptions::default().with_metrics(true)).unwrap();
        assert!(g1.metrics().shards.is_empty());
    }

    #[test]
    fn shard_option_is_clamped() {
        assert_eq!(
            ExploreOptions::default()
                .with_shards(9999)
                .effective_shards(),
            MAX_SHARDS
        );
        assert_eq!(
            ExploreOptions::default().with_shards(3).effective_shards(),
            3
        );
    }
}
