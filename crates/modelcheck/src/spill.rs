//! Disk spill backend for the interned exploration stores.
//!
//! The interned stores are file-shaped already: node rows are fixed-stride
//! `u32` id arrays appended in discovery order, arena ids are dense and
//! append-only, and the fingerprint index is a flat `fp → ids` multimap.
//! This module gives `CompactStore` / `CompactShard` (see `graph.rs`) a
//! bounded hot tier by spilling each of those to append-only files under a
//! per-exploration run directory:
//!
//! * **rows** — one file holding the id rows of nodes `[0, hot_base)`, in
//!   id order, so a spilled row is one `seek + read` at `id * stride * 4`;
//! * **arena segments** — one framed file of encoded
//!   [`ARENA_SEGMENT`](subconsensus_sim::ARENA_SEGMENT)-id segments
//!   (object and proc interleaved as evicted). Arenas are append-only, so
//!   a segment's encoding never changes and is written at most once;
//! * **fingerprint index buckets** — `fp → id` pairs bucketed by low
//!   fingerprint bits, appended when the in-memory index is drained and
//!   scanned on dedup probes past the in-memory map.
//!
//! What spills, and when, is decided by the stores (`begin_level` in
//! `graph.rs`); this module is the dumb I/O layer plus the byte
//! accounting. Spill I/O failing is an environment failure (disk full,
//! run dir deleted), not a model-checking result, so all I/O panics with
//! context rather than threading `Result`s through the store traits.
//!
//! The run directory lives under `MC_STORE_DIR` (default:
//! [`std::env::temp_dir`]) as `mc-spill-<pid>-<seq>` and is removed on
//! drop — including the early-exit paths (verdict goals, panics during
//! exploration) since the stores own their [`Spill`] by value.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use subconsensus_sim::Recorder;

/// Hot-tier budget applied when the disk store is selected without an
/// explicit `store_budget_bytes` / `MC_STORE_BUDGET` (256 MiB).
pub(crate) const DEFAULT_DISK_BUDGET: usize = 256 << 20;

/// Fingerprint-index spill fans out over this many bucket files (by low
/// fingerprint bits), so a dedup probe scans `1/16` of the spilled index.
const INDEX_BUCKETS: usize = 16;

/// Distinguishes run directories of concurrent explorations in one process
/// (sharded runs create one per shard).
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// An owned run directory, removed (recursively) on drop.
struct RunDir {
    path: PathBuf,
}

impl RunDir {
    fn create() -> RunDir {
        let base = std::env::var_os("MC_STORE_DIR")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!("mc-spill-{}-{}", std::process::id(), seq));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("spill: cannot create run dir {}: {e}", path.display()));
        RunDir { path }
    }
}

impl Drop for RunDir {
    fn drop(&mut self) {
        // Best-effort: a failed cleanup must not turn into a panic-in-drop.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn create_file(dir: &RunDir, name: &str) -> File {
    OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(dir.path.join(name))
        .unwrap_or_else(|e| {
            panic!(
                "spill: cannot create {} in {}: {e}",
                name,
                dir.path.display()
            )
        })
}

/// Times one spill I/O operation onto the recorder's spill slots, only
/// when the phase timers are on (the untimed path reads no clock).
fn timed<R>(rec: &Recorder, add: impl Fn(&Recorder, u64), op: impl FnOnce() -> R) -> R {
    if rec.is_timing() {
        let t0 = Instant::now();
        let out = op();
        add(rec, t0.elapsed().as_nanos() as u64);
        out
    } else {
        op()
    }
}

/// One store's spill state: the run directory, its three file families and
/// the resident bookkeeping of what is currently reloaded or pinned.
pub(crate) struct Spill {
    dir: RunDir,
    /// Hot-tier byte budget the owning store evicts against.
    pub(crate) budget: usize,
    /// Row width in `u32` words (`nobjects + nprocs`).
    stride: usize,
    rows_file: File,
    /// Rows `[0, hot_base)` are on disk; the store's `words` vec holds
    /// `[hot_base, len)`.
    hot_base: usize,
    /// Spilled rows faulted back for the current level (frontier pins plus
    /// merge-time dedup faults); cleared at every level boundary.
    reloaded: HashMap<usize, Box<[u32]>>,
    seg_file: File,
    seg_pos: u64,
    /// `(offset, len)` of each written object segment frame, by segment.
    obj_frames: Vec<Option<(u64, u32)>>,
    proc_frames: Vec<Option<(u64, u32)>>,
    /// Level stamp of each segment's last pin — the eviction policy's LRU
    /// key (`0` = never pinned).
    pub(crate) obj_pin: Vec<u64>,
    pub(crate) proc_pin: Vec<u64>,
    /// Monotone level counter advanced by the store's `begin_level`.
    pub(crate) level: u64,
    idx_files: Vec<Option<File>>,
    /// Whether the fingerprint index has ever been drained to buckets — if
    /// so, dedup probes must also scan the bucket files.
    pub(crate) drained: bool,
    /// Last bucket scanned, cached: bucket files only grow at level
    /// boundaries, so within one level's merge the cache is coherent.
    bucket_cache: Option<(usize, Vec<(u64, u64)>)>,
}

impl Spill {
    pub(crate) fn new(stride: usize, budget: usize) -> Spill {
        let dir = RunDir::create();
        let rows_file = create_file(&dir, "rows.bin");
        let seg_file = create_file(&dir, "segments.bin");
        Spill {
            dir,
            budget,
            stride,
            rows_file,
            hot_base: 0,
            reloaded: HashMap::new(),
            seg_file,
            seg_pos: 0,
            obj_frames: Vec::new(),
            proc_frames: Vec::new(),
            obj_pin: Vec::new(),
            proc_pin: Vec::new(),
            level: 0,
            idx_files: (0..INDEX_BUCKETS).map(|_| None).collect(),
            drained: false,
            bucket_cache: None,
        }
    }

    /// First node id *not* on disk: the store's `words` vec starts here.
    pub(crate) fn hot_base(&self) -> usize {
        self.hot_base
    }

    /// Appends `words` (complete rows, ids `hot_base..`) to the rows file.
    /// The caller clears its hot vec afterwards; the prefix-on-disk
    /// invariant (`rows file = ids [0, hot_base) in order`) is what makes
    /// faulting a row one offset computation.
    pub(crate) fn spill_rows(&mut self, words: &[u32], rec: &Recorder) {
        debug_assert_eq!(words.len() % self.stride, 0);
        if words.is_empty() {
            return;
        }
        timed(rec, Recorder::add_spill_write_ns, || {
            self.rows_file
                .seek(SeekFrom::End(0))
                .and_then(|_| self.rows_file.write_all(words_as_bytes(words)))
                .unwrap_or_else(|e| panic!("spill: rows write failed: {e}"));
        });
        self.hot_base += words.len() / self.stride;
        rec.count_spilled_bytes(std::mem::size_of_val(words) as u64);
    }

    /// Drops the per-level reloaded rows (called at every level boundary
    /// before re-pinning the new frontier).
    pub(crate) fn clear_reloaded(&mut self) {
        self.reloaded.clear();
    }

    /// The spilled row `i` if it is currently reloaded (worker-safe: a
    /// `None` here is a safe false miss on the dedup path).
    pub(crate) fn reloaded_row(&self, i: usize) -> Option<&[u32]> {
        self.reloaded.get(&i).map(|r| &**r)
    }

    /// Faults spilled row `i` into the reloaded tier (merge-side only:
    /// needs `&mut`) and returns it.
    pub(crate) fn fault_row(&mut self, i: usize, rec: &Recorder) -> &[u32] {
        debug_assert!(i < self.hot_base);
        if !self.reloaded.contains_key(&i) {
            let mut row = vec![0u32; self.stride].into_boxed_slice();
            timed(rec, Recorder::add_spill_read_ns, || {
                let off = (i * self.stride * 4) as u64;
                self.rows_file
                    .seek(SeekFrom::Start(off))
                    .and_then(|_| self.rows_file.read_exact(words_as_bytes_mut(&mut row)))
                    .unwrap_or_else(|e| panic!("spill: row {i} read failed: {e}"));
            });
            rec.count_store_reloads(1);
            self.reloaded.insert(i, row);
        }
        &self.reloaded[&i]
    }

    /// Resident bytes of the reloaded-row tier.
    pub(crate) fn reloaded_bytes(&self) -> usize {
        self.reloaded.len() * (self.stride * 4 + std::mem::size_of::<usize>() * 2)
    }

    fn frames(&mut self, procs: bool) -> &mut Vec<Option<(u64, u32)>> {
        if procs {
            &mut self.proc_frames
        } else {
            &mut self.obj_frames
        }
    }

    /// Whether the `(procs, seg)` arena segment has been written.
    pub(crate) fn has_segment(&self, procs: bool, seg: usize) -> bool {
        let frames = if procs {
            &self.proc_frames
        } else {
            &self.obj_frames
        };
        frames.get(seg).is_some_and(|f| f.is_some())
    }

    /// Writes one encoded arena segment (first eviction only — arenas are
    /// append-only, so the encoding of a complete segment never changes).
    pub(crate) fn write_segment(&mut self, procs: bool, seg: usize, bytes: &[u8], rec: &Recorder) {
        if self.has_segment(procs, seg) {
            return;
        }
        let off = self.seg_pos;
        timed(rec, Recorder::add_spill_write_ns, || {
            self.seg_file
                .seek(SeekFrom::Start(off))
                .and_then(|_| self.seg_file.write_all(bytes))
                .unwrap_or_else(|e| panic!("spill: segment write failed: {e}"));
        });
        self.seg_pos += bytes.len() as u64;
        let frames = self.frames(procs);
        if frames.len() <= seg {
            frames.resize(seg + 1, None);
        }
        frames[seg] = Some((
            off,
            u32::try_from(bytes.len()).expect("segment frame too large"),
        ));
        rec.count_spilled_bytes(bytes.len() as u64);
    }

    /// Reads back one written arena segment.
    pub(crate) fn read_segment(&mut self, procs: bool, seg: usize, rec: &Recorder) -> Vec<u8> {
        let (off, len) = self.frames(procs)[seg].expect("reading a segment never written");
        let mut bytes = vec![0u8; len as usize];
        timed(rec, Recorder::add_spill_read_ns, || {
            self.seg_file
                .seek(SeekFrom::Start(off))
                .and_then(|_| self.seg_file.read_exact(&mut bytes))
                .unwrap_or_else(|e| panic!("spill: segment read failed: {e}"));
        });
        rec.count_store_reloads(1);
        bytes
    }

    /// Stamps `(procs, seg)` as pinned at the current level (the LRU key
    /// eviction sorts by).
    pub(crate) fn pin_segment(&mut self, procs: bool, seg: usize) {
        let level = self.level;
        let pins = if procs {
            &mut self.proc_pin
        } else {
            &mut self.obj_pin
        };
        if pins.len() <= seg {
            pins.resize(seg + 1, 0);
        }
        pins[seg] = level;
    }

    /// Moves every entry of the in-memory fingerprint index to the bucket
    /// files. Entries are appended once: the map only holds entries added
    /// since the previous drain.
    pub(crate) fn drain_index(&mut self, index: &mut HashMap<u64, Vec<usize>>, rec: &Recorder) {
        if index.is_empty() {
            return;
        }
        let mut bufs: Vec<Vec<u8>> = (0..INDEX_BUCKETS).map(|_| Vec::new()).collect();
        for (&fp, ids) in index.iter() {
            let buf = &mut bufs[(fp as usize) % INDEX_BUCKETS];
            for &id in ids {
                buf.extend_from_slice(&fp.to_le_bytes());
                buf.extend_from_slice(&(id as u64).to_le_bytes());
            }
        }
        index.clear();
        let mut written = 0u64;
        for (b, buf) in bufs.iter().enumerate() {
            if buf.is_empty() {
                continue;
            }
            if self.idx_files[b].is_none() {
                self.idx_files[b] = Some(create_file(&self.dir, &format!("idx_{b:02}.bin")));
            }
            let file = self.idx_files[b]
                .as_mut()
                .expect("bucket file just created");
            timed(rec, Recorder::add_spill_write_ns, || {
                file.seek(SeekFrom::End(0))
                    .and_then(|_| file.write_all(buf))
                    .unwrap_or_else(|e| panic!("spill: index bucket write failed: {e}"));
            });
            written += buf.len() as u64;
        }
        rec.count_spilled_bytes(written);
        self.drained = true;
        self.bucket_cache = None;
    }

    /// Appends the node ids filed under `fp` in the spilled index to
    /// `out` (the in-memory map's candidates come from the caller). Probe
    /// order across candidates is irrelevant: at most one can word-match.
    pub(crate) fn spilled_candidates(&mut self, fp: u64, out: &mut Vec<usize>, rec: &Recorder) {
        let b = (fp as usize) % INDEX_BUCKETS;
        let Some(file) = self.idx_files[b].as_mut() else {
            return;
        };
        if self.bucket_cache.as_ref().map(|(cb, _)| *cb) != Some(b) {
            let mut bytes = Vec::new();
            timed(rec, Recorder::add_spill_read_ns, || {
                file.seek(SeekFrom::Start(0))
                    .and_then(|_| file.read_to_end(&mut bytes))
                    .unwrap_or_else(|e| panic!("spill: index bucket read failed: {e}"));
            });
            rec.count_store_reloads(1);
            let pairs = bytes
                .chunks_exact(16)
                .map(|c| {
                    (
                        u64::from_le_bytes(c[..8].try_into().expect("bucket pair")),
                        u64::from_le_bytes(c[8..].try_into().expect("bucket pair")),
                    )
                })
                .collect();
            self.bucket_cache = Some((b, pairs));
        }
        let (_, pairs) = self
            .bucket_cache
            .as_ref()
            .expect("bucket cache just filled");
        out.extend(
            pairs
                .iter()
                .filter(|(pfp, _)| *pfp == fp)
                .map(|(_, id)| *id as usize),
        );
    }

    /// Resident bytes of the bucket cache.
    pub(crate) fn bucket_cache_bytes(&self) -> usize {
        self.bucket_cache
            .as_ref()
            .map_or(0, |(_, pairs)| pairs.len() * 16)
    }

    /// Streams the whole rows file back: the full `[0, hot_base)` prefix
    /// as one contiguous words vec (freeze-time reconstitution).
    pub(crate) fn read_all_rows(&mut self, rec: &Recorder) -> Vec<u32> {
        let mut words = vec![0u32; self.hot_base * self.stride];
        if !words.is_empty() {
            timed(rec, Recorder::add_spill_read_ns, || {
                self.rows_file
                    .seek(SeekFrom::Start(0))
                    .and_then(|_| self.rows_file.read_exact(words_as_bytes_mut(&mut words)))
                    .unwrap_or_else(|e| panic!("spill: rows readback failed: {e}"));
            });
            rec.count_store_reloads(1);
        }
        words
    }

    /// The run directory path (tests assert it is cleaned up on drop).
    #[cfg(test)]
    pub(crate) fn dir_path(&self) -> PathBuf {
        self.dir.path.clone()
    }
}

fn words_as_bytes(words: &[u32]) -> &[u8] {
    // Safe view: u32 has no padding and any alignment works for &[u8].
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast(), std::mem::size_of_val(words)) }
}

fn words_as_bytes_mut(words: &mut [u32]) -> &mut [u8] {
    // Safe view on a native-endian round trip: the bytes are written and
    // read back by this same process.
    unsafe {
        std::slice::from_raw_parts_mut(words.as_mut_ptr().cast(), std::mem::size_of_val(words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_spill_and_fault_round_trip() {
        let rec = Recorder::new();
        let mut spill = Spill::new(3, 1024);
        let dir = spill.dir_path();
        assert!(dir.exists());
        spill.spill_rows(&[1, 2, 3, 4, 5, 6], &rec);
        assert_eq!(spill.hot_base(), 2);
        assert_eq!(spill.reloaded_row(1), None, "not faulted yet");
        assert_eq!(spill.fault_row(1, &rec), &[4, 5, 6]);
        assert_eq!(spill.fault_row(0, &rec), &[1, 2, 3]);
        assert_eq!(spill.reloaded_row(1), Some(&[4u32, 5, 6][..]));
        spill.clear_reloaded();
        assert_eq!(spill.reloaded_row(1), None);
        assert_eq!(spill.read_all_rows(&rec), vec![1, 2, 3, 4, 5, 6]);
        drop(spill);
        assert!(!dir.exists(), "run dir must be removed on drop");
    }

    #[test]
    fn segments_write_once_and_read_back() {
        let rec = Recorder::new();
        let mut spill = Spill::new(2, 1024);
        assert!(!spill.has_segment(false, 0));
        spill.write_segment(false, 0, b"abc", &rec);
        spill.write_segment(true, 0, b"xyzw", &rec);
        // Re-writing is a no-op: the first frame stays authoritative.
        spill.write_segment(false, 0, b"IGNORED", &rec);
        assert!(spill.has_segment(false, 0));
        assert!(!spill.has_segment(false, 1));
        assert_eq!(spill.read_segment(false, 0, &rec), b"abc");
        assert_eq!(spill.read_segment(true, 0, &rec), b"xyzw");
    }

    #[test]
    fn index_drain_and_probe() {
        let rec = Recorder::new();
        let mut spill = Spill::new(2, 1024);
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        index.insert(7, vec![1, 4]);
        index.insert(7 + INDEX_BUCKETS as u64, vec![9]);
        spill.drain_index(&mut index, &rec);
        assert!(index.is_empty());
        assert!(spill.drained);
        // Same bucket, different fingerprints: the probe filters exactly.
        let mut out = Vec::new();
        spill.spilled_candidates(7, &mut out, &rec);
        out.sort_unstable();
        assert_eq!(out, vec![1, 4]);
        let mut out = Vec::new();
        spill.spilled_candidates(7 + INDEX_BUCKETS as u64, &mut out, &rec);
        assert_eq!(out, vec![9]);
        // A second drain appends only the new entries.
        index.insert(7, vec![12]);
        spill.drain_index(&mut index, &rec);
        let mut out = Vec::new();
        spill.spilled_candidates(7, &mut out, &rec);
        out.sort_unstable();
        assert_eq!(out, vec![1, 4, 12]);
    }
}
