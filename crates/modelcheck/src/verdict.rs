//! Streaming verdicts: answer property questions *during* exploration.
//!
//! The classic pipeline explores the full reachable graph, freezes it into
//! CSR form, builds a reverse CSR, and only then asks the questions
//! (wait-freedom, agreement bounds, validity, root valency). For
//! verdict-only callers — `search_binary_consensus`, the hierarchy tables —
//! that is wasted work twice over: the freeze and reverse-CSR phases build
//! structures the caller never looks at, and exploration keeps running long
//! after the answer is decided (the first hung terminal, the first
//! disagreeing decision set, the first lasso).
//!
//! [`VerdictQuery`] names the conjunction of properties a caller wants;
//! [`ExploreGoal::Verdict`] makes the explorer accumulate the answer
//! *streamingly* as nodes merge and stop at the end of the first BFS level
//! where any queried conjunct is refuted. The result is a
//! [`StreamingVerdict`]: exact on complete runs, and a *sound partial*
//! answer (one-sided bounds plus a cause) on truncated or early-exited
//! runs.
//!
//! # Why early exit is sound
//!
//! Every refutation the engine acts on is witnessed by structure that is
//! *real* in any prefix of the exploration:
//!
//! - **Terminals are real.** A node is terminal iff it has no enabled
//!   process, a property of the configuration itself — so a hung process,
//!   an undecided process, a decision outside the valid set, or a
//!   disagreeing decision set observed at *any* merged terminal refutes
//!   the corresponding property of the full graph too.
//! - **Cycles are real.** Edges recorded so far are edges of the full
//!   graph; a cycle in a prefix is a cycle in the whole, so wait-freedom
//!   is refuted the moment one is confirmed.
//! - **Positive answers need completeness.** "Wait-free", "at most k
//!   distinct decisions", "all decisions valid" quantify over *all*
//!   executions, so the engine only confirms them when exploration ran to
//!   exhaustion. On truncated runs they stay undecided and the verdict
//!   reports bounds instead ([`VerdictBound`], [`VerdictCause`]).
//!
//! Symmetry and POR quotients preserve exactly the facts the engine
//! streams (terminal decision sets, hangs, cycles-or-not, root valence) —
//! see DESIGN.md — so a verdict goal composes with both reductions, and
//! with sharding: shard-local facts are folded in the same deterministic
//! tag order the graph itself is built in.

use std::collections::BTreeSet;

use subconsensus_sim::Value;

use crate::properties::WaitFreedom;

/// What an exploration is *for*: the full frozen graph, or just a verdict.
///
/// Under [`ExploreGoal::Verdict`] the explorer accumulates the queried
/// properties on the fly, stops at the end of the first level where the
/// query is refuted, and skips the freeze + reverse-CSR phases entirely —
/// the resulting `StateGraph` carries a [`StreamingVerdict`] but no CSR
/// (CSR-dependent methods panic with a pointed message; re-explore with
/// `FullGraph` to get one).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ExploreGoal {
    /// Build the full graph: freeze the CSR, keep every node addressable.
    #[default]
    FullGraph,
    /// Answer the query, as early as possible; skip the CSR machinery.
    Verdict(VerdictQuery),
}

/// A conjunction of property questions to decide during exploration.
///
/// Components left unqueried are still *tracked* (the verdict reports
/// them) but never trigger an early exit. An empty query never exits
/// early and is vacuously confirmed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerdictQuery {
    /// Require wait-freedom: refuted by a hung process at a terminal, an
    /// undecided process at a terminal, or a confirmed cycle (lasso).
    pub wait_freedom: bool,
    /// Require at most this many distinct decided values per terminal
    /// (`Some(1)` = consensus agreement; `Some(k)` = k-set agreement).
    pub max_distinct: Option<usize>,
    /// Require every decided value to come from this set (validity).
    pub valid_values: Option<Vec<Value>>,
    /// Require a univalent root: refuted the moment two distinct decided
    /// values are observed across terminals — the first bivalent critical
    /// configuration of the valency argument.
    pub univalent: bool,
}

impl VerdictQuery {
    /// An empty query: nothing required, nothing exits early.
    pub fn new() -> Self {
        Self::default()
    }

    /// Require wait-freedom.
    pub fn require_wait_freedom(mut self) -> Self {
        self.wait_freedom = true;
        self
    }

    /// Require at most `k` distinct decided values per terminal.
    pub fn require_max_distinct(mut self, k: usize) -> Self {
        self.max_distinct = Some(k);
        self
    }

    /// Require every decided value to be one of `values`.
    pub fn require_valid_values(mut self, values: Vec<Value>) -> Self {
        self.valid_values = Some(values);
        self
    }

    /// Require a univalent root (refuted by the first bivalence witness).
    pub fn require_univalent(mut self) -> Self {
        self.univalent = true;
        self
    }
}

/// Why a verdict run stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerdictCause {
    /// The reachable graph was explored to exhaustion: every component of
    /// the verdict is exact.
    Exhausted,
    /// Some queried conjunct was refuted and exploration stopped at the
    /// end of that BFS level. Refutations are exact; unrefuted components
    /// stay undecided.
    EarlyExit {
        /// The first refuted conjunct, human-readable.
        reason: &'static str,
    },
    /// The `max_configs` bound dropped states: only refutations and lower
    /// bounds are decided — a sound *partial* verdict.
    Truncated {
        /// The configuration cap that was hit.
        cap: usize,
    },
}

/// A one-sided-safe bound on a counted quantity (distinct decisions).
///
/// `lower` is always sound: that many were *observed*. `upper` is `Some`
/// exactly when exploration completed, in which case both bounds coincide
/// with the true value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerdictBound {
    /// Largest value observed so far (sound lower bound).
    pub lower: usize,
    /// Exact value when the run completed; `None` on partial runs.
    pub upper: Option<usize>,
}

impl VerdictBound {
    /// The exact value, when the run decided it.
    pub fn exact(&self) -> Option<usize> {
        self.upper.filter(|&u| u == self.lower)
    }
}

/// The answer a verdict-goal exploration returns.
///
/// Every component uses three-valued logic: `Some(x)` is decided (sound
/// regardless of how the run ended), `None` is undecided (the run ended
/// before the property could be confirmed). [`holds`](Self::holds) folds
/// the *queried* components into one answer.
#[derive(Clone, Debug)]
pub struct StreamingVerdict {
    /// Why the run stopped.
    pub cause: VerdictCause,
    /// Configurations explored before stopping.
    pub configs: usize,
    /// Terminal configurations observed before stopping.
    pub terminals: usize,
    /// Wait-freedom: `Some(WaitFree)` only on complete runs; any refuting
    /// variant is sound the moment it is reported.
    pub wait_freedom: Option<WaitFreedom>,
    /// Bound on the per-terminal distinct-decision count (the k-agreement
    /// quantity); exact on complete runs.
    pub max_distinct: VerdictBound,
    /// Validity against the queried set: `Some(false)` on the first
    /// out-of-set decision, `Some(true)` only on completion, `None` when
    /// no valid set was queried or the run was cut short.
    pub validity: Option<bool>,
    /// Decided values observed across all terminals so far — a sound
    /// lower bound on the root valence, exact on complete runs.
    pub root_valence: BTreeSet<Value>,
    /// Root bivalence: `Some(true)` as soon as two distinct decided values
    /// exist, `Some(false)` only on completion.
    pub root_bivalent: Option<bool>,
    query: VerdictQuery,
}

impl StreamingVerdict {
    /// Whether the run explored the whole reachable graph.
    pub fn complete(&self) -> bool {
        self.cause == VerdictCause::Exhausted
    }

    /// Folds the queried conjuncts into one three-valued answer:
    /// `Some(false)` the moment any queried conjunct is refuted (sound on
    /// partial runs), `Some(true)` when all queried conjuncts are
    /// confirmed (requires completion), `None` otherwise.
    pub fn holds(&self) -> Option<bool> {
        let mut confirmed = true;
        if self.query.wait_freedom {
            match &self.wait_freedom {
                Some(WaitFreedom::WaitFree) => {}
                Some(_) => return Some(false),
                None => confirmed = false,
            }
        }
        if let Some(k) = self.query.max_distinct {
            if self.max_distinct.lower > k {
                return Some(false);
            }
            match self.max_distinct.upper {
                Some(u) if u <= k => {}
                _ => confirmed = false,
            }
        }
        if self.query.valid_values.is_some() {
            match self.validity {
                Some(false) => return Some(false),
                Some(true) => {}
                None => confirmed = false,
            }
        }
        if self.query.univalent {
            match self.root_bivalent {
                Some(true) => return Some(false),
                Some(false) => {}
                None => confirmed = false,
            }
        }
        if confirmed {
            Some(true)
        } else {
            None
        }
    }

    /// The query this verdict answers.
    pub fn query(&self) -> &VerdictQuery {
        &self.query
    }

    /// The verdict as one JSON object — the `outcome` payload of a
    /// run-ledger line (hand-formatted like every emitter here; the root
    /// valence set is elided, its cardinality is what analyses consume).
    pub fn to_json(&self) -> String {
        use subconsensus_sim::json::json_escape;
        let cause = match &self.cause {
            VerdictCause::Exhausted => "{\"kind\": \"exhausted\"}".to_string(),
            VerdictCause::EarlyExit { reason } => format!(
                "{{\"kind\": \"early_exit\", \"reason\": \"{}\"}}",
                json_escape(reason)
            ),
            VerdictCause::Truncated { cap } => {
                format!("{{\"kind\": \"truncated\", \"cap\": {cap}}}")
            }
        };
        let opt_bool = |b: Option<bool>| b.map_or_else(|| "null".to_string(), |b| b.to_string());
        let wait_freedom = match &self.wait_freedom {
            None => "null".to_string(),
            Some(WaitFreedom::WaitFree) => "\"wait_free\"".to_string(),
            Some(WaitFreedom::Diverges) => "\"diverges\"".to_string(),
            Some(WaitFreedom::Hangs) => "\"hangs\"".to_string(),
            Some(WaitFreedom::Stuck) => "\"stuck\"".to_string(),
        };
        let upper = self
            .max_distinct
            .upper
            .map_or_else(|| "null".to_string(), |u| u.to_string());
        format!(
            "{{\"cause\": {cause}, \"configs\": {}, \"terminals\": {}, \
             \"complete\": {}, \"holds\": {}, \"wait_freedom\": {wait_freedom}, \
             \"max_distinct\": {{\"lower\": {}, \"upper\": {upper}}}, \
             \"validity\": {}, \"root_valence_size\": {}, \"root_bivalent\": {}}}",
            self.configs,
            self.terminals,
            self.complete(),
            opt_bool(self.holds()),
            self.max_distinct.lower,
            opt_bool(self.validity),
            self.root_valence.len(),
            opt_bool(self.root_bivalent)
        )
    }
}

/// Per-terminal facts a store reports without materializing a `Config`:
/// the distinct decided values plus the hung / undecided classification —
/// everything the streaming engine consumes.
#[derive(Clone, Debug, Default)]
pub(crate) struct TerminalFacts {
    /// Sorted, deduplicated decided values at this terminal.
    pub decided: Vec<Value>,
    /// Some process is hung here.
    pub any_hung: bool,
    /// Every process decided here.
    pub all_decided: bool,
}

/// The in-flight accumulator `explore_core` / `explore_sharded` feed.
///
/// All state transitions are commutative (max, union, monotone bools), so
/// the fold is insensitive to merge order within a level; combined with
/// level-granular early exit this keeps verdicts — and explored-config
/// counts — deterministic across threads × shards × symmetry × POR ×
/// store.
#[derive(Debug)]
pub(crate) struct VerdictEngine {
    query: VerdictQuery,
    terminals: usize,
    max_distinct_seen: usize,
    root_valence: BTreeSet<Value>,
    any_hung: bool,
    any_stuck: bool,
    invalid: bool,
    cycle_confirmed: bool,
    /// A known-target edge with `depth[to] <= depth[from]` merged since the
    /// last cycle check. Every cycle contains such an edge (depth deltas
    /// are `<= +1` per edge and sum to 0 around a cycle), so zero
    /// candidates over a whole run proves acyclicity without any DFS.
    pending_candidates: bool,
    /// Some retreating candidate was ever seen: completion must run one
    /// final cycle check (the cycle through an old candidate may only have
    /// closed after that candidate's level was checked).
    ever_candidate: bool,
}

impl VerdictEngine {
    pub(crate) fn new(query: VerdictQuery) -> Self {
        VerdictEngine {
            query,
            terminals: 0,
            max_distinct_seen: 0,
            root_valence: BTreeSet::new(),
            any_hung: false,
            any_stuck: false,
            invalid: false,
            cycle_confirmed: false,
            pending_candidates: false,
            ever_candidate: false,
        }
    }

    /// Folds one merged terminal's facts in.
    pub(crate) fn on_terminal(&mut self, facts: TerminalFacts) {
        self.terminals += 1;
        self.max_distinct_seen = self.max_distinct_seen.max(facts.decided.len());
        self.any_hung |= facts.any_hung;
        self.any_stuck |= !facts.all_decided && !facts.any_hung;
        if let Some(valid) = &self.query.valid_values {
            if facts.decided.iter().any(|v| !valid.contains(v)) {
                self.invalid = true;
            }
        }
        self.root_valence.extend(facts.decided);
    }

    /// Registers a retreating edge candidate (known target no deeper than
    /// its source) — the only edges that can close a cycle.
    pub(crate) fn on_retreating_edge(&mut self) {
        self.pending_candidates = true;
        self.ever_candidate = true;
    }

    /// Whether the caller should run a cycle check over the edges recorded
    /// so far (wait-freedom queried, not yet refuted by a cycle, and fresh
    /// candidates arrived). At most one check per level.
    pub(crate) fn wants_cycle_check(&self) -> bool {
        self.query.wait_freedom && !self.cycle_confirmed && self.pending_candidates
    }

    /// Whether completion must run one last cycle check: candidates were
    /// seen at some point, but no per-level check has confirmed a cycle —
    /// a cycle through an *old* candidate may have closed since.
    pub(crate) fn needs_final_cycle_check(&self) -> bool {
        self.query.wait_freedom && !self.cycle_confirmed && self.ever_candidate
    }

    /// Records the outcome of a cycle check.
    pub(crate) fn record_cycle_check(&mut self, found: bool) {
        self.pending_candidates = false;
        self.cycle_confirmed |= found;
    }

    /// The first refuted queried conjunct, if any — `Some` means the
    /// caller can stop exploring at the end of this level.
    pub(crate) fn refutation(&self) -> Option<&'static str> {
        if self.query.wait_freedom {
            if self.cycle_confirmed {
                return Some("wait-freedom refuted: cycle (divergent schedule)");
            }
            if self.any_hung {
                return Some("wait-freedom refuted: hung process at a terminal");
            }
            if self.any_stuck {
                return Some("wait-freedom refuted: undecided process at a terminal");
            }
        }
        if let Some(k) = self.query.max_distinct {
            if self.max_distinct_seen > k {
                return Some("agreement bound exceeded at a terminal");
            }
        }
        if self.query.valid_values.is_some() && self.invalid {
            return Some("validity refuted: decision outside the valid set");
        }
        if self.query.univalent && self.root_valence.len() >= 2 {
            return Some("root is bivalent: two decided values observed");
        }
        None
    }

    /// Seals the engine into the verdict. `configs` is the number of
    /// explored configurations; `truncated_cap` is `Some` when the
    /// `max_configs` bound dropped states; `early` when the run stopped on
    /// a refutation. A run is *complete* iff neither happened.
    pub(crate) fn finish(
        self,
        truncated_cap: Option<usize>,
        early: bool,
        configs: usize,
    ) -> StreamingVerdict {
        let complete = truncated_cap.is_none() && !early;
        let wait_freedom = if self.cycle_confirmed {
            Some(WaitFreedom::Diverges)
        } else if self.any_hung {
            Some(WaitFreedom::Hangs)
        } else if self.any_stuck {
            Some(WaitFreedom::Stuck)
        } else if complete && (self.query.wait_freedom || !self.ever_candidate) {
            // No per-terminal refutation, and acyclicity is actually
            // concluded: either no retreating candidate ever appeared (the
            // depth argument then proves acyclicity with no DFS at all), or
            // wait-freedom was queried and the explorer ran the final cycle
            // check before calling `finish`. With candidates but no query,
            // no check ever ran — stay undecided rather than guess.
            Some(WaitFreedom::WaitFree)
        } else {
            None
        };
        let cause = if early {
            VerdictCause::EarlyExit {
                reason: self.refutation().unwrap_or("query refuted"),
            }
        } else if let Some(cap) = truncated_cap {
            VerdictCause::Truncated { cap }
        } else {
            VerdictCause::Exhausted
        };
        StreamingVerdict {
            cause,
            configs,
            terminals: self.terminals,
            wait_freedom,
            max_distinct: VerdictBound {
                lower: self.max_distinct_seen,
                upper: complete.then_some(self.max_distinct_seen),
            },
            validity: if self.invalid {
                Some(false)
            } else if complete && self.query.valid_values.is_some() {
                Some(true)
            } else {
                None
            },
            root_bivalent: if self.root_valence.len() >= 2 {
                Some(true)
            } else if complete {
                Some(false)
            } else {
                None
            },
            root_valence: self.root_valence,
            query: self.query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(decided: &[i64], any_hung: bool, all_decided: bool) -> TerminalFacts {
        TerminalFacts {
            decided: decided.iter().map(|&v| Value::Int(v)).collect(),
            any_hung,
            all_decided,
        }
    }

    #[test]
    fn empty_query_is_vacuously_confirmed_on_completion() {
        let eng = VerdictEngine::new(VerdictQuery::new());
        let v = eng.finish(None, false, 10);
        assert_eq!(v.cause, VerdictCause::Exhausted);
        assert_eq!(v.holds(), Some(true));
        assert_eq!(v.max_distinct.exact(), Some(0));
    }

    #[test]
    fn agreement_refutation_is_sound_without_completion() {
        let mut eng = VerdictEngine::new(VerdictQuery::new().require_max_distinct(1));
        eng.on_terminal(facts(&[0, 1], false, true));
        assert!(eng.refutation().is_some());
        let v = eng.finish(None, true, 5);
        assert_eq!(v.holds(), Some(false));
        assert!(matches!(v.cause, VerdictCause::EarlyExit { .. }));
        assert_eq!(v.max_distinct.lower, 2);
        assert_eq!(v.max_distinct.upper, None);
        assert_eq!(v.root_bivalent, Some(true));
    }

    #[test]
    fn positive_answers_require_completion() {
        let mut eng = VerdictEngine::new(
            VerdictQuery::new()
                .require_wait_freedom()
                .require_max_distinct(1)
                .require_valid_values(vec![Value::Int(7)]),
        );
        eng.on_terminal(facts(&[7], false, true));
        assert!(eng.refutation().is_none());
        // Truncated: everything positive stays undecided.
        let v = eng.finish(Some(100), false, 100);
        assert_eq!(v.holds(), None);
        assert_eq!(v.cause, VerdictCause::Truncated { cap: 100 });
        assert_eq!(v.wait_freedom, None);
        assert_eq!(v.validity, None);
        assert_eq!(v.max_distinct.lower, 1);
        assert_eq!(v.max_distinct.upper, None);
    }

    #[test]
    fn complete_run_confirms_the_conjunction() {
        let mut eng = VerdictEngine::new(
            VerdictQuery::new()
                .require_wait_freedom()
                .require_max_distinct(1)
                .require_valid_values(vec![Value::Int(7)]),
        );
        eng.on_terminal(facts(&[7], false, true));
        let v = eng.finish(None, false, 12);
        assert_eq!(v.holds(), Some(true));
        assert_eq!(v.wait_freedom, Some(WaitFreedom::WaitFree));
        assert_eq!(v.validity, Some(true));
        assert_eq!(v.max_distinct.exact(), Some(1));
        assert_eq!(v.root_bivalent, Some(false));
    }

    #[test]
    fn hang_and_stuck_refute_wait_freedom_even_truncated() {
        let mut eng = VerdictEngine::new(VerdictQuery::new().require_wait_freedom());
        eng.on_terminal(facts(&[1], true, false));
        let v = eng.finish(Some(50), false, 50);
        assert_eq!(v.wait_freedom, Some(WaitFreedom::Hangs));
        assert_eq!(v.holds(), Some(false));

        let mut eng = VerdictEngine::new(VerdictQuery::new().require_wait_freedom());
        eng.on_terminal(facts(&[], false, false));
        assert_eq!(
            eng.refutation().unwrap(),
            "wait-freedom refuted: undecided process at a terminal"
        );
        let v = eng.finish(None, true, 3);
        assert_eq!(v.wait_freedom, Some(WaitFreedom::Stuck));
    }

    #[test]
    fn cycle_candidates_drive_checks_and_divergence() {
        let mut eng = VerdictEngine::new(VerdictQuery::new().require_wait_freedom());
        assert!(!eng.wants_cycle_check());
        assert!(!eng.needs_final_cycle_check());
        eng.on_retreating_edge();
        assert!(eng.wants_cycle_check());
        eng.record_cycle_check(false);
        assert!(!eng.wants_cycle_check());
        // An old candidate's cycle may close later: completion re-checks.
        assert!(eng.needs_final_cycle_check());
        eng.record_cycle_check(true);
        assert!(!eng.needs_final_cycle_check());
        assert_eq!(
            eng.refutation().unwrap(),
            "wait-freedom refuted: cycle (divergent schedule)"
        );
        let v = eng.finish(None, true, 9);
        assert_eq!(v.wait_freedom, Some(WaitFreedom::Diverges));
        assert_eq!(v.holds(), Some(false));
    }

    #[test]
    fn unqueried_components_never_refute() {
        let mut eng = VerdictEngine::new(VerdictQuery::new().require_max_distinct(2));
        // Hung terminal with 2 distinct values: wait-freedom not queried,
        // bound not exceeded — no early exit.
        eng.on_terminal(facts(&[0, 1], true, false));
        assert!(eng.refutation().is_none());
        let v = eng.finish(None, false, 4);
        // Tracked anyway: the verdict still reports the hang.
        assert_eq!(v.wait_freedom, Some(WaitFreedom::Hangs));
        assert_eq!(v.holds(), Some(true));
    }

    #[test]
    fn univalence_refuted_across_terminals() {
        let mut eng = VerdictEngine::new(VerdictQuery::new().require_univalent());
        eng.on_terminal(facts(&[0], false, true));
        assert!(eng.refutation().is_none());
        eng.on_terminal(facts(&[1], false, true));
        assert_eq!(
            eng.refutation().unwrap(),
            "root is bivalent: two decided values observed"
        );
        let v = eng.finish(None, true, 6);
        assert_eq!(v.root_bivalent, Some(true));
        assert_eq!(v.holds(), Some(false));
        assert_eq!(v.root_valence.len(), 2);
    }
}
