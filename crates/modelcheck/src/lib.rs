//! Exhaustive model checking for subconsensus systems.
//!
//! Because the simulator's step relation is a pure function on hashable
//! configurations, whole (small) systems can be explored exhaustively —
//! every scheduler choice and every nondeterministic object outcome. On top
//! of the resulting [`StateGraph`] this crate provides:
//!
//! * **wait-freedom / termination** — [`check_wait_freedom`]: acyclicity of
//!   the configuration graph plus all-terminals-decide;
//! * **agreement bounds** — [`max_distinct_decisions`] and
//!   [`TerminalReport`]: the exact worst-case number of distinct decided
//!   values over *all* adversary schedules, i.e. the `k` for which a
//!   protocol solves `k`-set consensus;
//! * **valency analysis** — [`Valency`], [`find_critical`]: bivalent /
//!   univalent classification and critical-configuration search, the
//!   mechanized form of the paper's Section-6-style impossibility arguments;
//! * **streaming verdicts** — [`ExploreGoal::Verdict`] / [`VerdictQuery`]:
//!   the answers above accumulated *during* exploration, with early exit at
//!   the first refutation, sound partial verdicts on truncated runs, and
//!   the freeze + reverse-CSR phases skipped entirely.
//!
//! Exploration scales past naive enumeration with three composable
//! reductions (see [`ExploreOptions`]): parallel level expansion
//! (`threads`), the orbit quotient under process symmetry (`symmetry`),
//! and commutativity-based partial-order reduction (`por`) — the last
//! preserving every terminal-derived verdict above while pruning redundant
//! interleavings ([`find_critical`] alone requires a full graph and
//! rejects reduced ones).
//!
//! This is the evaluation engine of the reproduction: the paper proves its
//! theorems by hand; we check each concrete instance exhaustively for small
//! parameters.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;
mod properties;
mod spill;
mod valency;
mod verdict;

pub use graph::{Edge, ExploreOptions, GraphStats, NodeView, StateGraph, StoreBackend};
pub use properties::{
    check_nonblocking, check_nonblocking_with, check_wait_freedom, max_distinct_decisions,
    TerminalReport, WaitFreedom,
};
// Telemetry types live in `sim` (the shared substrate crate) but are part
// of this crate's exploration API surface; re-export them so model-checking
// callers need only one import path.
pub use subconsensus_sim::{
    ExploreMetrics, LevelMetrics, ProgressReport, Recorder, StoreMetrics, TruncationCause,
};
pub use valency::{find_critical, CriticalConfig, Valency};
pub use verdict::{ExploreGoal, StreamingVerdict, VerdictBound, VerdictCause, VerdictQuery};
