//! Whole-graph properties: wait-freedom, agreement bounds, terminal reports.
//!
//! Every check in this module is graph-generic and permutation-invariant, so
//! it can be run unchanged on an orbit-quotient graph (explored with
//! [`ExploreOptions::symmetry`](crate::ExploreOptions)) and returns the same
//! verdict as on the full graph: terminals quotient onto terminals with the
//! same decided-value sets, any cycle of the full graph projects onto a
//! cycle of the quotient (and lifts back), and backward reachability is
//! preserved because within-group permutations are graph automorphisms.

use std::collections::BTreeSet;

use subconsensus_sim::{ProcStatus, Recorder, Value};

use crate::graph::StateGraph;

/// Summary of the final configurations of an exhaustively explored system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TerminalReport {
    /// Number of distinct final configurations.
    pub terminals: usize,
    /// `true` if in every final configuration every process decided.
    pub all_processes_decide: bool,
    /// `true` if some final configuration contains a hung process.
    pub any_hung: bool,
    /// The distinct decision *sets* (one sorted set per terminal).
    pub decision_sets: BTreeSet<Vec<Value>>,
    /// The maximum number of distinct decided values over all terminals.
    pub max_distinct_decisions: usize,
    /// The minimum number of distinct decided values over all terminals.
    pub min_distinct_decisions: usize,
}

impl TerminalReport {
    /// Computes the report from an explored graph.
    ///
    /// Terminal probes are id-native ([`StateGraph::node`]): statuses are
    /// read straight from the store's id rows, no per-terminal `Config`
    /// materialization.
    pub fn of(graph: &StateGraph) -> Self {
        let mut all_decide = true;
        let mut any_hung = false;
        let mut decision_sets = BTreeSet::new();
        let mut max_d = 0;
        let mut min_d = usize::MAX;
        for &t in graph.terminals() {
            let cfg = graph.node(t);
            for pid in 0..cfg.nprocs() {
                match cfg.status(subconsensus_sim::Pid::new(pid)) {
                    ProcStatus::Decided(_) => {}
                    ProcStatus::Hung => {
                        any_hung = true;
                        all_decide = false;
                    }
                    _ => all_decide = false,
                }
            }
            let vals = cfg.decided_values();
            max_d = max_d.max(vals.len());
            min_d = min_d.min(vals.len());
            decision_sets.insert(vals);
        }
        if graph.terminals().is_empty() {
            all_decide = false;
            min_d = 0;
        }
        TerminalReport {
            terminals: graph.terminals().len(),
            all_processes_decide: all_decide,
            any_hung,
            decision_sets,
            max_distinct_decisions: max_d,
            min_distinct_decisions: min_d,
        }
    }
}

/// The verdict of a wait-freedom check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitFreedom {
    /// Every execution is finite and every process decides in every final
    /// configuration.
    WaitFree,
    /// The configuration graph has a cycle: some adversary schedule lets a
    /// process take infinitely many steps without deciding.
    Diverges,
    /// Some execution leaves a process hung inside an object.
    Hangs,
    /// Some final configuration has an undecided (but not hung) process —
    /// should not happen for well-formed protocols.
    Stuck,
}

impl WaitFreedom {
    /// Returns `true` for the [`WaitFreedom::WaitFree`] verdict.
    pub fn is_wait_free(&self) -> bool {
        matches!(self, WaitFreedom::WaitFree)
    }
}

/// Checks wait-freedom of an exhaustively explored (non-truncated) system:
/// acyclic configuration graph + every process decides in every terminal.
///
/// For bounded (one-shot task) protocols this is exactly wait-freedom, and —
/// per the paper's observation that for tasks non-blocking and wait-free
/// solvability coincide — also non-blocking solvability.
pub fn check_wait_freedom(graph: &StateGraph) -> WaitFreedom {
    if graph.has_cycle() {
        return WaitFreedom::Diverges;
    }
    let report = TerminalReport::of(graph);
    if report.all_processes_decide {
        WaitFreedom::WaitFree
    } else if report.any_hung {
        WaitFreedom::Hangs
    } else {
        WaitFreedom::Stuck
    }
}

/// Returns the maximum number of distinct decided values over every possible
/// execution — the quantity bounded by `k`-agreement.
pub fn max_distinct_decisions(graph: &StateGraph) -> usize {
    TerminalReport::of(graph).max_distinct_decisions
}

/// Checks the **non-blocking** (lock-free) property the paper's comparisons
/// are phrased in: from every reachable configuration, *some* continuation
/// reaches a final configuration — i.e. the system as a whole can always
/// make progress, even if individual processes can be starved.
///
/// Wait-free ⇒ non-blocking; the converse fails (e.g. safe agreement and
/// other spin-until protocols are non-blocking but not wait-free, which is
/// exactly the distinction the paper's task-solvability equivalence
/// exploits).
pub fn check_nonblocking(graph: &StateGraph) -> bool {
    check_nonblocking_with(graph, &Recorder::new())
}

/// [`check_nonblocking`] with a telemetry [`Recorder`]: the reverse-CSR
/// build is timed into the recorder's `reverse_csr` phase when timing is
/// on.
pub fn check_nonblocking_with(graph: &StateGraph, rec: &Recorder) -> bool {
    // Backward reachability from the terminals, over the one-shot reverse
    // CSR (see [`StateGraph::reverse_csr`]).
    let n = graph.len();
    let mut can_finish = vec![false; n];
    let (pred_ptr, preds) = {
        let _t = rec.time_reverse_csr();
        graph.reverse_csr()
    };
    let mut work: Vec<usize> = graph.terminals().to_vec();
    for &t in graph.terminals() {
        can_finish[t] = true;
    }
    while let Some(i) = work.pop() {
        for &p in &preds[pred_ptr[i] as usize..pred_ptr[i + 1] as usize] {
            let p = p as usize;
            if !can_finish[p] {
                can_finish[p] = true;
                work.push(p);
            }
        }
    }
    can_finish.iter().all(|&b| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ExploreOptions;
    use std::sync::Arc;
    use subconsensus_sim::{
        Action, ObjId, ObjectError, ObjectSpec, Op, Outcome, ProcCtx, Protocol, ProtocolError,
        SystemBuilder, Value,
    };

    #[derive(Debug)]
    struct Reg;

    impl ObjectSpec for Reg {
        fn type_name(&self) -> &'static str {
            "reg"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            match op.name {
                "read" => Ok(vec![Outcome::ret(state.clone(), state.clone())]),
                "write" => Ok(vec![Outcome::ret(
                    op.arg(0).cloned().unwrap_or(Value::Nil),
                    Value::Nil,
                )]),
                "sink" => Ok(vec![Outcome::hang(state.clone())]),
                _ => Err(ObjectError::UnknownOp {
                    object: "reg",
                    op: op.clone(),
                }),
            }
        }
    }

    /// Decide own input immediately.
    #[derive(Debug)]
    struct DecideSelf;

    impl Protocol for DecideSelf {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::Decide(ctx.input.clone()))
        }
    }

    /// Touch the sink (hangs), never decides.
    #[derive(Debug)]
    struct Sinker {
        reg: ObjId,
    }

    impl Protocol for Sinker {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.reg, Op::new("sink")))
        }
    }

    /// Spin forever.
    #[derive(Debug)]
    struct Spinner {
        reg: ObjId,
    }

    impl Protocol for Spinner {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Nil
        }

        fn step(
            &self,
            _ctx: &ProcCtx,
            _local: &Value,
            _resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            Ok(Action::invoke(Value::Nil, self.reg, Op::new("read")))
        }
    }

    #[test]
    fn decide_self_is_wait_free_with_n_distinct_values() {
        let mut b = SystemBuilder::new();
        b.add_processes(
            Arc::new(DecideSelf),
            [Value::Int(1), Value::Int(2), Value::Int(3)],
        );
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::WaitFree);
        assert!(check_wait_freedom(&g).is_wait_free());
        let r = TerminalReport::of(&g);
        assert_eq!(r.max_distinct_decisions, 3);
        assert_eq!(r.min_distinct_decisions, 3);
        assert_eq!(max_distinct_decisions(&g), 3);
        assert!(!r.any_hung);
    }

    #[test]
    fn hanging_protocol_reported() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Sinker { reg }), Value::Nil);
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::Hangs);
        let r = TerminalReport::of(&g);
        assert!(r.any_hung);
        assert_eq!(r.max_distinct_decisions, 0);
    }

    #[test]
    fn divergence_reported() {
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Spinner { reg }), Value::Nil);
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert_eq!(check_wait_freedom(&g), WaitFreedom::Diverges);
    }

    #[test]
    fn nonblocking_distinguishes_livelock_from_starvation() {
        // A wait-free system is trivially non-blocking.
        let mut b = SystemBuilder::new();
        b.add_processes(Arc::new(DecideSelf), [Value::Int(1)]);
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert!(check_nonblocking(&g));

        // A pure spinner never reaches any terminal: blocking.
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Spinner { reg }), Value::Nil);
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert!(!check_nonblocking(&g));
        assert_eq!(check_wait_freedom(&g), WaitFreedom::Diverges);

        // A process that hangs in an object still yields a terminal
        // configuration: non-blocking in the graph sense (the system
        // "finishes"), though not wait-free.
        let mut b = SystemBuilder::new();
        let reg = b.add_object(Reg);
        b.add_process(Arc::new(Sinker { reg }), Value::Nil);
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        assert!(check_nonblocking(&g));
        assert_eq!(check_wait_freedom(&g), WaitFreedom::Hangs);
    }

    #[test]
    fn decision_sets_enumerated() {
        let mut b = SystemBuilder::new();
        b.add_processes(Arc::new(DecideSelf), [Value::Int(1), Value::Int(2)]);
        let g = StateGraph::explore(&b.build(), &ExploreOptions::default()).unwrap();
        let r = TerminalReport::of(&g);
        assert_eq!(
            r.decision_sets.iter().next().unwrap(),
            &vec![Value::Int(1), Value::Int(2)]
        );
    }
}
