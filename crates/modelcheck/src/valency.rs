//! Valency analysis: which values can still be decided from a configuration.
//!
//! This mechanizes the FLP/Herlihy critical-configuration method on concrete
//! protocols: the *valence* of a configuration is the set of values decided
//! in some reachable final configuration; a configuration is **bivalent** if
//! its valence has at least two values, **univalent** if exactly one, and
//! **critical** if it is bivalent while all of its one-step successors are
//! univalent.

use std::collections::BTreeSet;

use subconsensus_sim::{Pid, Recorder, Value};

use crate::graph::StateGraph;

/// The valence of every reachable configuration of a [`StateGraph`].
#[derive(Clone, Debug)]
pub struct Valency {
    sets: Vec<BTreeSet<Value>>,
}

impl Valency {
    /// Computes the valence of every node of `graph` by backward fixpoint
    /// propagation from the final configurations (cycles are handled by the
    /// fixpoint, monotonically).
    ///
    /// On an orbit-quotient graph (explored with
    /// [`ExploreOptions::symmetry`](crate::ExploreOptions)) this computes the
    /// valence of each orbit representative, which equals the valence of
    /// every member of the orbit: within-group permutations fix the
    /// decided-value *sets* (processes are renamed, the multiset of decisions
    /// is not), so valence is constant on orbits.
    ///
    /// On a partial-order-reduced graph (explored with
    /// [`ExploreOptions::por`](crate::ExploreOptions)) only the *root*
    /// valence is trustworthy: POR reaches every terminal, so node 0 sees
    /// the full decided-value spectrum, but an interior node may be missing
    /// pruned successors and its computed valence can be a strict subset of
    /// its true valence. [`find_critical`] therefore rejects reduced graphs.
    pub fn compute(graph: &StateGraph) -> Self {
        Self::compute_with(graph, &Recorder::new())
    }

    /// [`compute`](Self::compute) with a telemetry [`Recorder`]: the
    /// reverse-CSR build — the pass's dominant allocation — is timed into
    /// the recorder's `reverse_csr` phase when timing is on.
    pub fn compute_with(graph: &StateGraph, rec: &Recorder) -> Self {
        let n = graph.len();
        let mut sets: Vec<BTreeSet<Value>> = vec![BTreeSet::new(); n];
        for &t in graph.terminals() {
            sets[t] = graph.node(t).decided_values().into_iter().collect();
        }
        // Reverse adjacency for worklist propagation: one flat CSR pass
        // instead of per-node `Vec`s (see [`StateGraph::reverse_csr`]).
        let (pred_ptr, preds) = {
            let _t = rec.time_reverse_csr();
            graph.reverse_csr()
        };
        // Dirty-bit worklist: a node is queued at most once per time its set
        // grows, and the popped set is moved out (not cloned) while its
        // predecessors are updated.
        let mut queued = vec![false; n];
        let mut work: Vec<usize> = graph.terminals().to_vec();
        for &t in &work {
            queued[t] = true;
        }
        while let Some(j) = work.pop() {
            queued[j] = false;
            let vals = std::mem::take(&mut sets[j]);
            for &p in &preds[pred_ptr[j] as usize..pred_ptr[j + 1] as usize] {
                let p = p as usize;
                if p == j {
                    continue; // self-loop: nothing new to propagate
                }
                let before = sets[p].len();
                sets[p].extend(vals.iter().cloned());
                if sets[p].len() > before && !queued[p] {
                    queued[p] = true;
                    work.push(p);
                }
            }
            sets[j] = vals;
        }
        Valency { sets }
    }

    /// Returns the valence of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn valence(&self, index: usize) -> &BTreeSet<Value> {
        &self.sets[index]
    }

    /// Returns `true` if node `index` has at least two decidable values.
    pub fn is_bivalent(&self, index: usize) -> bool {
        self.sets[index].len() >= 2
    }

    /// Returns `true` if node `index` has exactly one decidable value.
    pub fn is_univalent(&self, index: usize) -> bool {
        self.sets[index].len() == 1
    }
}

/// A critical configuration found by [`find_critical`].
#[derive(Clone, Debug)]
pub struct CriticalConfig {
    /// Node index of the critical configuration.
    pub index: usize,
    /// For every outgoing edge: the stepping process and the (unique) value
    /// its successor is committed to.
    pub branches: Vec<(Pid, Value)>,
}

/// Finds a critical configuration: bivalent, with every one-step successor
/// univalent.
///
/// For a correct wait-free consensus protocol over objects of limited power,
/// the paper's Section-6-style argument derives a contradiction *at* such a
/// configuration; this function exhibits the configurations on which those
/// hand arguments operate. Returns `None` if the graph has no critical
/// configuration (e.g. the protocol is not a consensus protocol, or some
/// successor is itself bivalent everywhere).
///
/// On an orbit-quotient graph, a returned configuration witnesses a whole
/// orbit of critical configurations of the full graph (valence is constant
/// on orbits and permutations map successors to successors), and `None`
/// means the full graph has none either.
///
/// # Panics
///
/// Panics if `graph` was explored under
/// [`ExploreGoal::Verdict`](crate::ExploreGoal) (no CSR, possibly
/// early-exited — re-explore with `ExploreGoal::FullGraph`), or with
/// partial-order reduction
/// ([`ExploreOptions::por`](crate::ExploreOptions)). POR preserves the
/// terminals (hence the root valence), but an interior node of the reduced
/// graph is missing the successors the reduction pruned — its computed
/// valence can shrink and the "every successor univalent" test is
/// meaningless against a partial successor list. Criticality is a property
/// of the *full* graph; re-explore with `ExploreOptions::with_por(false)`.
pub fn find_critical(graph: &StateGraph, valency: &Valency) -> Option<CriticalConfig> {
    assert!(
        !graph.is_verdict_only(),
        "find_critical requires a fully expanded graph: this graph was explored under \
         ExploreGoal::Verdict, which skips the CSR freeze and may stop exploring at the \
         first refutation, so interior valences and successor lists do not exist. \
         Re-explore with ExploreGoal::FullGraph."
    );
    assert!(
        !graph.is_por_reduced(),
        "find_critical requires a fully expanded graph: partial-order reduction preserves \
         root valence and terminal verdicts but not interior valences or successor lists, \
         so critical configurations cannot be identified on a reduced graph. \
         Re-explore with ExploreOptions::with_por(false)."
    );
    'node: for i in 0..graph.len() {
        if !valency.is_bivalent(i) {
            continue;
        }
        let edges = graph.edges(i);
        if edges.is_empty() {
            continue;
        }
        let mut branches = Vec::with_capacity(edges.len());
        for e in edges {
            if !valency.is_univalent(e.target()) {
                continue 'node;
            }
            let v = valency
                .valence(e.target())
                .iter()
                .next()
                .expect("univalent set has one element")
                .clone();
            branches.push((e.pid, v));
        }
        return Some(CriticalConfig { index: i, branches });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ExploreOptions;
    use std::sync::Arc;
    use subconsensus_sim::{
        Action, ObjId, ObjectError, ObjectSpec, Op, Outcome, ProcCtx, Protocol, ProtocolError,
        SystemBuilder, SystemSpec, Value,
    };

    /// A consensus (sticky) object.
    #[derive(Debug)]
    struct Sticky;

    impl ObjectSpec for Sticky {
        fn type_name(&self) -> &'static str {
            "sticky"
        }

        fn initial_state(&self) -> Value {
            Value::Nil
        }

        fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
            let v = op.arg(0).cloned().unwrap_or(Value::Nil);
            let winner = if state.is_nil() { v } else { state.clone() };
            Ok(vec![Outcome::ret(winner.clone(), winner)])
        }
    }

    /// Propose to the sticky object, decide the answer.
    #[derive(Debug)]
    struct ProposeDecide {
        obj: ObjId,
    }

    impl Protocol for ProposeDecide {
        fn start(&self, _ctx: &ProcCtx) -> Value {
            Value::Int(0)
        }

        fn step(
            &self,
            ctx: &ProcCtx,
            local: &Value,
            resp: Option<&Value>,
        ) -> Result<Action, ProtocolError> {
            match local.as_int() {
                Some(0) => Ok(Action::invoke(
                    Value::Int(1),
                    self.obj,
                    Op::unary("propose", ctx.input.clone()),
                )),
                _ => Ok(Action::Decide(resp.cloned().unwrap_or(Value::Nil))),
            }
        }
    }

    fn sticky_consensus(nprocs: usize) -> SystemSpec {
        let mut b = SystemBuilder::new();
        let obj = b.add_object(Sticky);
        let p = Arc::new(ProposeDecide { obj });
        for i in 0..nprocs {
            b.add_process(p.clone(), Value::Int(i as i64));
        }
        b.build()
    }

    #[test]
    fn initial_config_of_consensus_race_is_bivalent() {
        let spec = sticky_consensus(2);
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        let v = Valency::compute(&g);
        assert!(v.is_bivalent(0), "either input can win from the start");
        // All terminals: exactly one value decided (agreement).
        for &t in g.terminals() {
            assert_eq!(g.config(t).decided_values().len(), 1);
            assert!(v.is_univalent(t));
        }
    }

    #[test]
    fn critical_config_exists_for_consensus_race() {
        let spec = sticky_consensus(2);
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        let v = Valency::compute(&g);
        let crit = find_critical(&g, &v).expect("a sticky race has a critical configuration");
        // The initial configuration is critical here: both processes' next
        // step is the propose that commits the value.
        assert!(v.is_bivalent(crit.index));
        let vals: BTreeSet<Value> = crit.branches.iter().map(|(_, v)| v.clone()).collect();
        assert_eq!(vals.len(), 2, "different branches commit different values");
    }

    #[test]
    fn solo_runs_are_univalent_everywhere() {
        let spec = sticky_consensus(1);
        let g = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
        let v = Valency::compute(&g);
        for i in 0..g.len() {
            assert!(v.is_univalent(i));
        }
        assert!(find_critical(&g, &v).is_none());
    }
}
