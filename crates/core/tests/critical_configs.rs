//! Mirroring the paper's Section-6-style critical-configuration arguments
//! on the deterministic grouped family: the model checker *finds* the
//! configurations on which the hand impossibility proofs operate.

use std::sync::Arc;

use subconsensus_core::GroupedObject;
use subconsensus_modelcheck::{find_critical, ExploreOptions, StateGraph, Valency};
use subconsensus_protocols::ProposeDecide;
use subconsensus_sim::{Protocol, SystemBuilder, SystemSpec, Value};

fn race(n: usize, k: usize, procs: usize) -> SystemSpec {
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    b.build()
}

#[test]
fn within_group_race_is_univalent_after_the_first_step() {
    // Two processes over O_{2,k}: both land in the first group, so the
    // first propose commits the outcome — the initial configuration is
    // critical, with both branches committing different values.
    let spec = race(2, 1, 2);
    let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    let valency = Valency::compute(&graph);
    assert!(valency.is_bivalent(0));
    let crit = find_critical(&graph, &valency).expect("critical configuration exists");
    assert_eq!(crit.index, 0, "the very first step commits");
    let committed: std::collections::BTreeSet<&Value> =
        crit.branches.iter().map(|(_, v)| v).collect();
    assert_eq!(
        committed.len(),
        2,
        "each process's step commits its own value"
    );
}

#[test]
fn cross_group_race_never_becomes_univalent_before_decisions() {
    // Three processes over O_{2,k}: the third lands in the second group.
    // Disagreement (2 values) is decided in every full execution, so the
    // "valence" never collapses to one value from the root — the checker
    // quantifies how far the protocol is from consensus.
    let spec = race(2, 1, 3);
    let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    let valency = Valency::compute(&graph);
    assert!(valency.is_bivalent(0));
    // Terminals themselves carry 2 decided values (the protocol is not a
    // consensus protocol for 3 processes).
    let degenerate = graph
        .terminals()
        .iter()
        .filter(|&&t| graph.config(t).decided_values().len() >= 2)
        .count();
    assert!(degenerate > 0, "disagreement terminals must exist");
}

#[test]
fn solo_runs_from_every_configuration_are_univalent() {
    // From any configuration, a single process running alone cannot change
    // the committed structure: along any solo path, the valence is
    // monotonically non-increasing.
    let spec = race(2, 0, 2);
    let graph = StateGraph::explore(&spec, &ExploreOptions::default()).unwrap();
    let valency = Valency::compute(&graph);
    for i in 0..graph.len() {
        for e in graph.edges(i) {
            assert!(
                valency.valence(e.target()).is_subset(valency.valence(i)),
                "steps never grow the valence"
            );
        }
    }
}
