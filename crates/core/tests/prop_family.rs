//! Randomized tests for the deterministic grouped family.
//!
//! Formerly `proptest`-based; rewritten over the in-tree seeded
//! [`SmallRng`] so the workspace builds with no external dependencies.

use subconsensus_core::GroupedObject;
use subconsensus_sim::{ObjectSpec, Op, SmallRng, Value};

const CASES: u64 = 256;

/// Applies a sequence of proposals, returning (responses, hang-count).
fn drive(obj: &GroupedObject, proposals: &[i64]) -> (Vec<Value>, usize) {
    let mut state = obj.initial_state();
    let mut responses = Vec::new();
    let mut hangs = 0;
    for &v in proposals {
        let out = obj
            .apply(&state, &Op::unary("propose", Value::Int(v)))
            .unwrap()
            .remove(0);
        state = out.state;
        match out.response {
            Some(r) => responses.push(r),
            None => hangs += 1,
        }
    }
    (responses, hangs)
}

fn arb_proposals(rng: &mut SmallRng, min: usize, max: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..min + rng.gen_index(max - min))
        .map(|_| rng.gen_range_i64(lo, hi))
        .collect()
}

#[test]
fn grading_invariant() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let group = 1 + rng.gen_index(5);
        let extra_cap = rng.gen_index(12);
        let raw = arb_proposals(&mut rng, 1, 20, 1, 1000);
        // Make proposal values unique so distinct responses = touched groups.
        let proposals: Vec<i64> = raw
            .iter()
            .enumerate()
            .map(|(i, v)| v + 1000 * i as i64)
            .collect();
        let capacity = group + extra_cap;
        let obj = GroupedObject::new(group, capacity);
        let (responses, hangs) = drive(&obj, &proposals);

        // Exactly min(len, capacity) proposals answered; the rest hang.
        let answered = proposals.len().min(capacity);
        assert_eq!(responses.len(), answered, "case {case}");
        assert_eq!(hangs, proposals.len() - answered, "case {case}");

        // The p-th answered proposal receives the group leader's value.
        for (p, resp) in responses.iter().enumerate() {
            let leader = (p / group) * group;
            assert_eq!(resp.as_int().unwrap(), proposals[leader], "case {case}");
        }

        // Distinct responses = number of touched groups (the grading).
        let distinct: std::collections::BTreeSet<&Value> = responses.iter().collect();
        assert_eq!(distinct.len(), answered.div_ceil(group), "case {case}");
    }
}

#[test]
fn determinism_same_inputs_same_outputs() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let group = 1 + rng.gen_index(4);
        let k = rng.gen_index(4);
        let proposals = arb_proposals(&mut rng, 1, 15, 1, 100);
        let obj = GroupedObject::for_level(group, k);
        let a = drive(&obj, &proposals);
        let b = drive(&obj, &proposals);
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn first_group_always_agrees_on_first_proposal() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let group = 2 + rng.gen_index(4);
        let k = rng.gen_index(3);
        let proposals = arb_proposals(&mut rng, 2, 12, 1, 100);
        let obj = GroupedObject::for_level(group, k);
        let (responses, _) = drive(&obj, &proposals);
        for resp in responses.iter().take(group) {
            assert_eq!(resp.as_int().unwrap(), proposals[0], "case {case}");
        }
    }
}

#[test]
fn validity_every_response_was_proposed() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let group = 1 + rng.gen_index(4);
        let cap = 1 + rng.gen_index(11);
        let proposals = arb_proposals(&mut rng, 1, 20, 1, 50);
        let obj = GroupedObject::new(group, cap);
        let (responses, _) = drive(&obj, &proposals);
        for r in &responses {
            assert!(proposals.contains(&r.as_int().unwrap()), "case {case}");
        }
    }
}

#[test]
fn state_hash_stable_for_model_checking() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let group = 1 + rng.gen_index(3);
        let cap = 1 + rng.gen_index(7);
        let proposals = arb_proposals(&mut rng, 0, 10, 1, 10);
        // Two replays of the same proposal sequence produce identical
        // (hash-equal) states — the property the model checker's visited
        // set depends on.
        let obj = GroupedObject::new(group, cap);
        let run_state = |ps: &[i64]| {
            let mut s = obj.initial_state();
            for &v in ps {
                s = obj
                    .apply(&s, &Op::unary("propose", Value::Int(v)))
                    .unwrap()
                    .remove(0)
                    .state;
            }
            s
        };
        assert_eq!(run_state(&proposals), run_state(&proposals), "case {case}");
    }
}
