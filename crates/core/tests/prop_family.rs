//! Property-based tests for the deterministic grouped family.

use proptest::prelude::*;
use subconsensus_core::GroupedObject;
use subconsensus_sim::{ObjectSpec, Op, Value};

/// Applies a sequence of proposals, returning (responses, hang-count).
fn drive(obj: &GroupedObject, proposals: &[i64]) -> (Vec<Value>, usize) {
    let mut state = obj.initial_state();
    let mut responses = Vec::new();
    let mut hangs = 0;
    for &v in proposals {
        let out = obj
            .apply(&state, &Op::unary("propose", Value::Int(v)))
            .unwrap()
            .remove(0);
        state = out.state;
        match out.response {
            Some(r) => responses.push(r),
            None => hangs += 1,
        }
    }
    (responses, hangs)
}

proptest! {
    #[test]
    fn grading_invariant(
        group in 1usize..6,
        extra_cap in 0usize..12,
        raw in prop::collection::vec(1i64..1000, 1..20),
    ) {
        // Make proposal values unique so distinct responses = touched groups.
        let proposals: Vec<i64> =
            raw.iter().enumerate().map(|(i, v)| v + 1000 * i as i64).collect();
        let capacity = group + extra_cap;
        let obj = GroupedObject::new(group, capacity);
        let (responses, hangs) = drive(&obj, &proposals);

        // Exactly min(len, capacity) proposals answered; the rest hang.
        let answered = proposals.len().min(capacity);
        prop_assert_eq!(responses.len(), answered);
        prop_assert_eq!(hangs, proposals.len() - answered);

        // The p-th answered proposal receives the group leader's value.
        for (p, resp) in responses.iter().enumerate() {
            let leader = (p / group) * group;
            prop_assert_eq!(resp.as_int().unwrap(), proposals[leader]);
        }

        // Distinct responses = number of touched groups (the grading).
        let distinct: std::collections::BTreeSet<&Value> = responses.iter().collect();
        prop_assert_eq!(distinct.len(), answered.div_ceil(group));
    }

    #[test]
    fn determinism_same_inputs_same_outputs(
        group in 1usize..5,
        k in 0usize..4,
        proposals in prop::collection::vec(1i64..100, 1..15),
    ) {
        let obj = GroupedObject::for_level(group, k);
        let a = drive(&obj, &proposals);
        let b = drive(&obj, &proposals);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn first_group_always_agrees_on_first_proposal(
        group in 2usize..6,
        k in 0usize..3,
        proposals in prop::collection::vec(1i64..100, 2..12),
    ) {
        let obj = GroupedObject::for_level(group, k);
        let (responses, _) = drive(&obj, &proposals);
        for resp in responses.iter().take(group) {
            prop_assert_eq!(resp.as_int().unwrap(), proposals[0]);
        }
    }

    #[test]
    fn validity_every_response_was_proposed(
        group in 1usize..5,
        cap in 1usize..12,
        proposals in prop::collection::vec(1i64..50, 1..20),
    ) {
        let obj = GroupedObject::new(group, cap);
        let (responses, _) = drive(&obj, &proposals);
        for r in &responses {
            prop_assert!(proposals.contains(&r.as_int().unwrap()));
        }
    }

    #[test]
    fn state_hash_stable_for_model_checking(
        group in 1usize..4,
        cap in 1usize..8,
        proposals in prop::collection::vec(1i64..10, 0..10),
    ) {
        // Two replays of the same proposal sequence produce identical
        // (hash-equal) states — the property the model checker's visited
        // set depends on.
        let obj = GroupedObject::new(group, cap);
        let run_state = |ps: &[i64]| {
            let mut s = obj.initial_state();
            for &v in ps {
                s = obj
                    .apply(&s, &Op::unary("propose", Value::Int(v)))
                    .unwrap()
                    .remove(0)
                    .state;
            }
            s
        };
        prop_assert_eq!(run_state(&proposals), run_state(&proposals));
    }
}
