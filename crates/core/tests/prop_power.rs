//! Property-based tests for the set-consensus power arithmetic.

use proptest::prelude::*;
use subconsensus_core::{implementable, partition_bound, witness_partition, ScPower};

fn power_strategy() -> impl Strategy<Value = ScPower> {
    (1usize..12)
        .prop_flat_map(|n| (Just(n), 1usize..=n))
        .prop_map(|(n, k)| ScPower::new(n, k))
}

proptest! {
    #[test]
    fn bound_is_at_most_n_and_at_least_min_j_n(n in 1usize..50, m in 1usize..10, j in 1usize..10) {
        prop_assume!(j <= m);
        let b = partition_bound(n, m, j);
        prop_assert!(b <= n);
        prop_assert!(b >= j.min(n));
    }

    #[test]
    fn bound_monotone_in_n(n in 1usize..40, m in 1usize..10, j in 1usize..10) {
        prop_assume!(j <= m);
        prop_assert!(partition_bound(n, m, j) <= partition_bound(n + 1, m, j));
    }

    #[test]
    fn bound_monotone_in_j(n in 1usize..40, m in 2usize..10, j in 1usize..9) {
        prop_assume!(j + 1 <= m);
        prop_assert!(partition_bound(n, m, j) <= partition_bound(n, m, j + 1));
    }

    #[test]
    fn bound_antimonotone_in_m(n in 1usize..40, m in 1usize..9, j in 1usize..9) {
        prop_assume!(j <= m);
        // A bigger object (more accesses, same agreement) never forces more
        // values.
        prop_assert!(partition_bound(n, m + 1, j) <= partition_bound(n, m, j));
    }

    #[test]
    fn bound_is_subadditive_over_process_splits(
        n1 in 1usize..25, n2 in 1usize..25, m in 1usize..10, j in 1usize..10,
    ) {
        prop_assume!(j <= m);
        prop_assert!(
            partition_bound(n1 + n2, m, j)
                <= partition_bound(n1, m, j) + partition_bound(n2, m, j)
        );
    }

    #[test]
    fn implementability_is_reflexive_and_transitive(
        a in power_strategy(), b in power_strategy(), c in power_strategy(),
    ) {
        prop_assert!(implementable(a, a));
        if implementable(b, a) && implementable(c, b) {
            prop_assert!(implementable(c, a), "{a} -> {b} -> {c}");
        }
    }

    #[test]
    fn weakening_the_target_preserves_implementability(
        a in power_strategy(), b in power_strategy(),
    ) {
        if implementable(b, a) && b.k < b.n {
            // Asking for one more allowed value is easier.
            prop_assert!(implementable(ScPower::new(b.n, b.k + 1), a));
        }
    }

    #[test]
    fn witness_partition_is_exact(n in 1usize..60, m in 1usize..12) {
        let blocks = witness_partition(n, m);
        prop_assert_eq!(blocks.iter().sum::<usize>(), n);
        prop_assert!(blocks.iter().all(|&b| 0 < b && b <= m));
        // Greedy is optimal: no partition forces fewer values. Check a few
        // random alternative partitions do not beat it.
        for j in 1..=m {
            let bound = partition_bound(n, m, j);
            let realized: usize = blocks.iter().map(|&b| j.min(b)).sum();
            prop_assert_eq!(realized, bound);
        }
    }

    #[test]
    fn consensus_universality_on_the_grid(n in 1usize..10, np in 1usize..10, k in 1usize..10) {
        prop_assume!(k <= np && np <= n);
        // n-consensus implements every (n', k) with n' ≤ n.
        prop_assert!(implementable(ScPower::new(np, k), ScPower::consensus(n)));
    }

    #[test]
    fn nothing_weak_builds_consensus(m in 3usize..12, j in 2usize..11) {
        prop_assume!(j < m);
        prop_assert!(!implementable(ScPower::consensus(2), ScPower::new(m, j)));
    }
}
