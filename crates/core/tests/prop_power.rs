//! Randomized tests for the set-consensus power arithmetic.
//!
//! Formerly `proptest`-based; rewritten over the in-tree seeded
//! [`SmallRng`] so the workspace builds with no external dependencies.
//! `prop_assume!` filters become plain `continue`s.

use subconsensus_core::{implementable, partition_bound, witness_partition, ScPower};
use subconsensus_sim::SmallRng;

const CASES: u64 = 512;

fn arb_power(rng: &mut SmallRng) -> ScPower {
    let n = 1 + rng.gen_index(11);
    let k = 1 + rng.gen_index(n);
    ScPower::new(n, k)
}

#[test]
fn bound_is_at_most_n_and_at_least_min_j_n() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 1 + rng.gen_index(49);
        let m = 1 + rng.gen_index(9);
        let j = 1 + rng.gen_index(9);
        if j > m {
            continue;
        }
        let b = partition_bound(n, m, j);
        assert!(b <= n, "case {case}");
        assert!(b >= j.min(n), "case {case}");
    }
}

#[test]
fn bound_monotone_in_n() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 1 + rng.gen_index(39);
        let m = 1 + rng.gen_index(9);
        let j = 1 + rng.gen_index(9);
        if j > m {
            continue;
        }
        assert!(
            partition_bound(n, m, j) <= partition_bound(n + 1, m, j),
            "case {case}"
        );
    }
}

#[test]
fn bound_monotone_in_j() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 1 + rng.gen_index(39);
        let m = 2 + rng.gen_index(8);
        let j = 1 + rng.gen_index(8);
        if j + 1 > m {
            continue;
        }
        assert!(
            partition_bound(n, m, j) <= partition_bound(n, m, j + 1),
            "case {case}"
        );
    }
}

#[test]
fn bound_antimonotone_in_m() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 1 + rng.gen_index(39);
        let m = 1 + rng.gen_index(8);
        let j = 1 + rng.gen_index(8);
        if j > m {
            continue;
        }
        // A bigger object (more accesses, same agreement) never forces more
        // values.
        assert!(
            partition_bound(n, m + 1, j) <= partition_bound(n, m, j),
            "case {case}"
        );
    }
}

#[test]
fn bound_is_subadditive_over_process_splits() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n1 = 1 + rng.gen_index(24);
        let n2 = 1 + rng.gen_index(24);
        let m = 1 + rng.gen_index(9);
        let j = 1 + rng.gen_index(9);
        if j > m {
            continue;
        }
        assert!(
            partition_bound(n1 + n2, m, j) <= partition_bound(n1, m, j) + partition_bound(n2, m, j),
            "case {case}"
        );
    }
}

#[test]
fn implementability_is_reflexive_and_transitive() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = arb_power(&mut rng);
        let b = arb_power(&mut rng);
        let c = arb_power(&mut rng);
        assert!(implementable(a, a), "case {case}");
        if implementable(b, a) && implementable(c, b) {
            assert!(implementable(c, a), "case {case}: {a} -> {b} -> {c}");
        }
    }
}

#[test]
fn weakening_the_target_preserves_implementability() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let a = arb_power(&mut rng);
        let b = arb_power(&mut rng);
        if implementable(b, a) && b.k < b.n {
            // Asking for one more allowed value is easier.
            assert!(
                implementable(ScPower::new(b.n, b.k + 1), a),
                "case {case}: {a} -> {b}"
            );
        }
    }
}

#[test]
fn witness_partition_is_exact() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 1 + rng.gen_index(59);
        let m = 1 + rng.gen_index(11);
        let blocks = witness_partition(n, m);
        assert_eq!(blocks.iter().sum::<usize>(), n, "case {case}");
        assert!(blocks.iter().all(|&b| 0 < b && b <= m), "case {case}");
        // Greedy is optimal: no partition forces fewer values. Check the
        // realized count matches the bound for every agreement level.
        for j in 1..=m {
            let bound = partition_bound(n, m, j);
            let realized: usize = blocks.iter().map(|&b| j.min(b)).sum();
            assert_eq!(realized, bound, "case {case}, j={j}");
        }
    }
}

#[test]
fn consensus_universality_on_the_grid() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let n = 1 + rng.gen_index(9);
        let np = 1 + rng.gen_index(9);
        let k = 1 + rng.gen_index(9);
        if !(k <= np && np <= n) {
            continue;
        }
        // n-consensus implements every (n', k) with n' ≤ n.
        assert!(
            implementable(ScPower::new(np, k), ScPower::consensus(n)),
            "case {case}"
        );
    }
}

#[test]
fn nothing_weak_builds_consensus() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(case);
        let m = 3 + rng.gen_index(9);
        let j = 2 + rng.gen_index(9);
        if j >= m {
            continue;
        }
        assert!(
            !implementable(ScPower::consensus(2), ScPower::new(m, j)),
            "case {case}: ({m},{j})"
        );
    }
}
