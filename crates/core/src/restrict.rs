//! Capacity gating: the *downward* direction of the paper's object
//! hierarchy, executable.
//!
//! `O_{n,k}` (capacity `n(k+1)`) is implementable from one higher-capacity
//! family member `O_{n,k'}`, `k' ≥ k`, plus a ticket dispenser: admit only
//! the first `n(k+1)` proposals to the inner object and leave later
//! proposals spinning forever — matching the target object's
//! hang-on-overflow semantics exactly (a hung operation never responds, and
//! a forever-spinning implementation never responds; the two are
//! indistinguishable to every process).
//!
//! **Honesty note.** Exact gating needs an atomic ticket — this module uses
//! a [`FetchAdd`](subconsensus_objects::FetchAdd) dispenser (consensus
//! number 2), an assumption *beyond* registers. With registers alone only a
//! *relaxed* gate is possible (the inc-then-read "flag principle" of the
//! paper lineage's Algorithm 4), under which racing proposals may all be
//! diverted to the hanging path; [`RelaxedGate`] implements that variant
//! and its tests exhibit exactly that relaxation. The paper's own hierarchy
//! statement is the *impossibility* in the upward direction, which is a
//! hand proof over all algorithms (documented in `EXPERIMENTS.md`, not
//! mechanized).

use subconsensus_sim::{ImplStep, Implementation, ObjId, Op, ProcCtx, ProtocolError, Value};

/// Implements a capacity-`limit` grouped object from one larger grouped
/// object (`inner`) plus a [`FetchAdd`](subconsensus_objects::FetchAdd)
/// ticket dispenser (`tickets`).
///
/// High-level operation: `propose(v)`. Proposals drawing tickets
/// `0 .. limit-1` are forwarded to `inner`; later proposals spin forever
/// (the implemented object's overflow semantics).
///
/// Linearizability is checked against
/// [`GroupedObject`](crate::GroupedObject)`::new(group_size, limit)` as the
/// reference spec.
#[derive(Clone, Copy, Debug)]
pub struct CapacityGate {
    inner: ObjId,
    tickets: ObjId,
    limit: usize,
}

impl CapacityGate {
    /// Creates the gate: proposals beyond `limit` never return.
    pub fn new(inner: ObjId, tickets: ObjId, limit: usize) -> Self {
        CapacityGate {
            inner,
            tickets,
            limit,
        }
    }
}

// Local state: (pc)
//   0 — draw a ticket (fetch_add 1)
//   1 — got the ticket: forward to inner, or start spinning
//   2 — forward response received: return it
//   3 — spinning: re-read the dispenser forever (never returns)
impl Implementation for CapacityGate {
    fn start_op(&self, _ctx: &ProcCtx, _op: &Op, _memory: &Value) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError> {
        if op.name != "propose" {
            return Err(ProtocolError::new(format!(
                "capacity gate: unknown operation `{}`",
                op.name
            )));
        }
        let pc = local
            .as_int()
            .ok_or_else(|| ProtocolError::new("capacity gate: bad local state"))?;
        match pc {
            0 => Ok(ImplStep::invoke(
                Value::Int(1),
                self.tickets,
                Op::unary("fetch_add", Value::Int(1)),
            )),
            1 => {
                let ticket = resp
                    .and_then(Value::as_int)
                    .ok_or_else(|| ProtocolError::new("capacity gate: bad ticket"))?;
                if ticket as usize >= self.limit {
                    // Over capacity: spin forever (the op never returns,
                    // exactly like the reference object's hang).
                    Ok(ImplStep::invoke(
                        Value::Int(3),
                        self.tickets,
                        Op::new("read"),
                    ))
                } else {
                    Ok(ImplStep::invoke(Value::Int(2), self.inner, op.clone()))
                }
            }
            2 => {
                let r = resp
                    .cloned()
                    .ok_or_else(|| ProtocolError::new("capacity gate: missing inner response"))?;
                Ok(ImplStep::ret(r, Value::Nil))
            }
            3 => Ok(ImplStep::invoke(
                Value::Int(3),
                self.tickets,
                Op::new("read"),
            )),
            pc => Err(ProtocolError::new(format!("capacity gate: bad pc {pc}"))),
        }
    }
}

/// The register-only **relaxed** gate, following the flag principle of the
/// paper lineage's Algorithm 4: increment a per-object counter, read it, and
/// proceed only on reading exactly the expected value.
///
/// Under contention this may divert proposals to the hanging path even
/// below capacity — the documented relaxation that register-only gating
/// cannot avoid. The resulting object still never *over*-admits, so every
/// returned response is consistent with the reference restricted to the
/// admitted proposals.
#[derive(Clone, Copy, Debug)]
pub struct RelaxedGate {
    inner: ObjId,
    counter: ObjId,
    limit: usize,
}

impl RelaxedGate {
    /// Creates the relaxed gate over a
    /// [`Counter`](subconsensus_objects::Counter) (`counter`).
    pub fn new(inner: ObjId, counter: ObjId, limit: usize) -> Self {
        RelaxedGate {
            inner,
            counter,
            limit,
        }
    }
}

// Local state: (pc) — 0 inc, 1 read, 2 gate decision, 3 forwarded, 4 spin.
impl Implementation for RelaxedGate {
    fn start_op(&self, _ctx: &ProcCtx, _op: &Op, _memory: &Value) -> Value {
        Value::Int(0)
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        op: &Op,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<ImplStep, ProtocolError> {
        if op.name != "propose" {
            return Err(ProtocolError::new(format!(
                "relaxed gate: unknown operation `{}`",
                op.name
            )));
        }
        let pc = local
            .as_int()
            .ok_or_else(|| ProtocolError::new("relaxed gate: bad local state"))?;
        match pc {
            0 => Ok(ImplStep::invoke(
                Value::Int(1),
                self.counter,
                Op::new("inc"),
            )),
            1 => Ok(ImplStep::invoke(
                Value::Int(2),
                self.counter,
                Op::new("read"),
            )),
            2 => {
                let seen = resp
                    .and_then(Value::as_int)
                    .ok_or_else(|| ProtocolError::new("relaxed gate: bad counter"))?;
                // Safe admission: the count we read bounds from above the
                // number of increments that *started* before our read; if it
                // is within the limit, at most `limit` proposals can ever be
                // admitted before us. Racing proposals may all read past the
                // limit and spuriously hang — the relaxation.
                if seen as usize > self.limit {
                    Ok(ImplStep::invoke(
                        Value::Int(4),
                        self.counter,
                        Op::new("read"),
                    ))
                } else {
                    Ok(ImplStep::invoke(Value::Int(3), self.inner, op.clone()))
                }
            }
            3 => {
                let r = resp
                    .cloned()
                    .ok_or_else(|| ProtocolError::new("relaxed gate: missing inner response"))?;
                Ok(ImplStep::ret(r, Value::Nil))
            }
            4 => Ok(ImplStep::invoke(
                Value::Int(4),
                self.counter,
                Op::new("read"),
            )),
            pc => Err(ProtocolError::new(format!("relaxed gate: bad pc {pc}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::GroupedObject;
    use std::sync::Arc;
    use subconsensus_objects::{Counter, FetchAdd};
    use subconsensus_sim::{
        check_linearizable, run_concurrent, BaseObjects, FirstOutcome, RandomScheduler, RoundRobin,
    };

    fn setup(n: usize, k_big: usize, limit: usize) -> (BaseObjects, Arc<dyn Implementation>) {
        let mut bank = BaseObjects::new();
        let inner = bank.add(GroupedObject::for_level(n, k_big));
        let tickets = bank.add(FetchAdd::new());
        let im: Arc<dyn Implementation> = Arc::new(CapacityGate::new(inner, tickets, limit));
        (bank, im)
    }

    #[test]
    fn sequential_behavior_matches_reference() {
        // Implement O_{2,0} (capacity 2) from O_{2,2} (capacity 6).
        let n = 2;
        let limit = 2;
        let (bank, im) = setup(n, 2, limit);
        let workload = vec![vec![
            Op::unary("propose", Value::Int(10)),
            Op::unary("propose", Value::Int(20)),
        ]];
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            10_000,
        )
        .unwrap();
        assert_eq!(out.results[0], vec![Value::Int(10), Value::Int(10)]);
        let reference = GroupedObject::new(n, limit);
        assert!(check_linearizable(&out.history, &reference)
            .unwrap()
            .is_some());
    }

    #[test]
    fn overflow_spins_and_remains_pending() {
        let n = 2;
        let limit = 2;
        let (bank, im) = setup(n, 2, limit);
        // Three processes, one proposal each: one of them must exceed the
        // gate and never return.
        let workload = vec![
            vec![Op::unary("propose", Value::Int(1))],
            vec![Op::unary("propose", Value::Int(2))],
            vec![Op::unary("propose", Value::Int(3))],
        ];
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            5_000, // bounded: the loser spins
        )
        .unwrap();
        assert!(!out.reached_final, "the overflow proposal spins forever");
        let completed: usize = out.results.iter().map(Vec::len).sum();
        assert_eq!(completed, limit, "exactly `limit` proposals complete");
        let reference = GroupedObject::new(n, limit);
        assert!(
            check_linearizable(&out.history, &reference)
                .unwrap()
                .is_some(),
            "history with the pending overflow op linearizes:\n{}",
            out.history
        );
    }

    #[test]
    fn random_schedules_linearize_against_restricted_reference() {
        let n = 2;
        let limit = 4; // O_{2,1} from O_{2,3}
        let reference = GroupedObject::new(n, limit);
        for seed in 0..120 {
            let (bank, im) = setup(n, 3, limit);
            let workload = vec![
                vec![
                    Op::unary("propose", Value::Int(1)),
                    Op::unary("propose", Value::Int(5)),
                ],
                vec![Op::unary("propose", Value::Int(2))],
                vec![Op::unary("propose", Value::Int(3))],
            ];
            let mut sched = RandomScheduler::seeded(seed);
            let out = run_concurrent(&bank, &im, workload, &mut sched, &mut FirstOutcome, 10_000)
                .unwrap();
            assert!(
                check_linearizable(&out.history, &reference)
                    .unwrap()
                    .is_some(),
                "seed {seed}:\n{}",
                out.history
            );
        }
    }

    #[test]
    fn relaxed_gate_admits_solo_and_never_over_admits() {
        let n = 2;
        let limit = 2;
        // Solo runs pass the flag check and behave exactly like the gate.
        let mut bank = BaseObjects::new();
        let inner = bank.add(GroupedObject::for_level(n, 2));
        let counter = bank.add(Counter::new());
        let im: Arc<dyn Implementation> = Arc::new(RelaxedGate::new(inner, counter, limit));
        let workload = vec![vec![
            Op::unary("propose", Value::Int(10)),
            Op::unary("propose", Value::Int(20)),
        ]];
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            10_000,
        )
        .unwrap();
        assert_eq!(out.results[0], vec![Value::Int(10), Value::Int(10)]);
    }

    #[test]
    fn relaxed_gate_may_spuriously_hang_under_contention() {
        // Three racing proposals against limit 2: under round-robin all
        // three read counter value 3 and all spin — the documented
        // relaxation that exact (FetchAdd) gating avoids.
        let n = 2;
        let limit = 2;
        let mut bank = BaseObjects::new();
        let inner = bank.add(GroupedObject::for_level(n, 2));
        let counter = bank.add(Counter::new());
        let im: Arc<dyn Implementation> = Arc::new(RelaxedGate::new(inner, counter, limit));
        let workload = vec![
            vec![Op::unary("propose", Value::Int(1))],
            vec![Op::unary("propose", Value::Int(2))],
            vec![Op::unary("propose", Value::Int(3))],
        ];
        let out = run_concurrent(
            &bank,
            &im,
            workload,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            3_000,
        )
        .unwrap();
        assert!(!out.reached_final);
        let completed: usize = out.results.iter().map(Vec::len).sum();
        assert_eq!(completed, 0, "all three proposals spuriously diverted");
    }
}
