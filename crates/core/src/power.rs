//! Set-consensus power arithmetic: the counting characterization of which
//! set-consensus objects implement which ("Theorem 41").
//!
//! The follow-up literature attributes to the paper (jointly with
//! Borowsky–Gafni and Chaudhuri–Reiners) the characterization of when
//! `(n, k)`-set-consensus objects are wait-free implementable from
//! `(m, j)`-set-consensus objects and registers in a system of `n` or more
//! processes. The operative quantity is the **partition bound**: partition
//! the `n` processes greedily into blocks of at most `m` and give each block
//! one source object —
//!
//! ```text
//! bound(n, m, j) = j·⌊n/m⌋ + min(j, n mod m)
//! ```
//!
//! distinct decisions suffice, and (by BG-simulation) no algorithm does
//! better. So the implementation exists iff `k ≥ bound(n, m, j)`.
//!
//! The *positive* direction is executable in this workspace:
//! [`PartitionPropose`](subconsensus_protocols::PartitionPropose) over
//! [`SetConsensus`](subconsensus_objects::SetConsensus) objects realizes the
//! bound, and experiment E3 validates predicate-vs-execution over a grid.

use std::fmt;

/// The power of an `(n, k)`-set-consensus object (or task): `n` accesses
/// (processes), at most `k` distinct decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScPower {
    /// Number of supported accesses/processes.
    pub n: usize,
    /// Agreement bound (maximum distinct decisions).
    pub k: usize,
}

impl ScPower {
    /// Creates an `(n, k)` power descriptor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k ≤ n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k > 0 && k <= n, "require 0 < k ≤ n, got ({n}, {k})");
        ScPower { n, k }
    }

    /// The power of `n`-process consensus, `(n, 1)`.
    pub fn consensus(n: usize) -> Self {
        Self::new(n, 1)
    }
}

impl fmt::Display for ScPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})-SC", self.n, self.k)
    }
}

/// The partition bound `j·⌊n/m⌋ + min(j, n mod m)`: the fewest distinct
/// decisions achievable among `n` processes using `(m, j)`-set-consensus
/// objects and registers.
///
/// # Examples
///
/// ```
/// use subconsensus_core::partition_bound;
///
/// // 4 processes with 2-consensus objects: 2 blocks of 2 → 2 values.
/// assert_eq!(partition_bound(4, 2, 1), 2);
/// // 5 processes with (3,2)-SC objects: block of 3 (2 values) + block of 2
/// // (min(2,2) values) → 4.
/// assert_eq!(partition_bound(5, 3, 2), 4);
/// ```
pub fn partition_bound(n: usize, m: usize, j: usize) -> usize {
    j * (n / m) + j.min(n % m)
}

/// The counting characterization: can `target` be wait-free implemented from
/// `source` objects and registers, in a system of `target.n` processes?
///
/// `true` iff `target.k ≥ partition_bound(target.n, source.n, source.k)`.
///
/// # Examples
///
/// ```
/// use subconsensus_core::{implementable, ScPower};
///
/// // (4,2)-SC from 2-consensus: yes (partition into two pairs).
/// assert!(implementable(ScPower::new(4, 2), ScPower::consensus(2)));
/// // 2-consensus from (3,2)-SC: no — set consensus never reaches consensus.
/// assert!(!implementable(ScPower::consensus(2), ScPower::new(3, 2)));
/// ```
pub fn implementable(target: ScPower, source: ScPower) -> bool {
    target.k >= partition_bound(target.n, source.n, source.k)
}

/// A greedy witness partition for the positive direction: block sizes
/// (each ≤ `m`) covering `n` processes, realizing [`partition_bound`].
pub fn witness_partition(n: usize, m: usize) -> Vec<usize> {
    let mut blocks = vec![m; n / m];
    if n % m > 0 {
        blocks.push(n % m);
    }
    blocks
}

/// Compares two powers under the implementation preorder at matched system
/// sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PowerOrder {
    /// Each implements the other.
    Equivalent,
    /// The left implements the right but not vice versa.
    LeftStronger,
    /// The right implements the left but not vice versa.
    RightStronger,
    /// Neither implements the other.
    Incomparable,
}

/// Orders `a` and `b` by mutual implementability (each judged at the other's
/// system size).
pub fn compare_power(a: ScPower, b: ScPower) -> PowerOrder {
    let a_impl_b = implementable(b, a); // a-objects build b
    let b_impl_a = implementable(a, b);
    match (a_impl_b, b_impl_a) {
        (true, true) => PowerOrder::Equivalent,
        (true, false) => PowerOrder::LeftStronger,
        (false, true) => PowerOrder::RightStronger,
        (false, false) => PowerOrder::Incomparable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_examples() {
        assert_eq!(partition_bound(6, 2, 1), 3);
        assert_eq!(partition_bound(7, 2, 1), 4);
        assert_eq!(partition_bound(3, 5, 2), 2, "n < m: one block, min(j, n)");
        assert_eq!(partition_bound(2, 5, 4), 2);
        assert_eq!(
            partition_bound(12, 3, 2),
            8,
            "the paper's (12,8) example from WRN₃-power"
        );
    }

    #[test]
    fn consensus_is_never_implementable_from_weak_set_consensus() {
        for n in 2..8 {
            for m in (n)..9 {
                for j in 2..m {
                    assert!(
                        !implementable(ScPower::consensus(n), ScPower::new(m, j)),
                        "consensus({n}) from ({m},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn self_implementation_always_holds() {
        for n in 1..10 {
            for k in 1..=n {
                let p = ScPower::new(n, k);
                assert!(implementable(p, p), "{p} from itself");
            }
        }
    }

    #[test]
    fn implementability_is_transitive_on_a_grid() {
        // Counting characterizations must be transitive: if a builds b and
        // b builds c then a builds c.
        let mut powers = Vec::new();
        for n in 1..=6 {
            for k in 1..=n {
                powers.push(ScPower::new(n, k));
            }
        }
        for &a in &powers {
            for &b in &powers {
                for &c in &powers {
                    if implementable(b, a) && implementable(c, b) {
                        assert!(implementable(c, a), "transitivity broken: {a} → {b} → {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn same_ratio_generic_powers_are_incomparable() {
        // Generic (i.e. worst-case, non-graded) set-consensus objects of the
        // same ratio n/k but different sizes cannot implement one another:
        // neither (n(k+1), k+1) nor (n(k+2), k+2) builds the other. This is
        // why the paper's fixed-consensus-level hierarchy must be measured
        // in the object-implementation relation, not by tasks alone.
        for n in 2..=5 {
            for k in 1..=4 {
                let small = ScPower::new(n * (k + 1), k + 1);
                let large = ScPower::new(n * (k + 2), k + 2);
                assert!(!implementable(large, small), "n={n}, k={k}");
                assert!(!implementable(small, large), "n={n}, k={k}");
            }
        }
    }

    #[test]
    fn smaller_same_ratio_is_stronger_when_sizes_divide() {
        // When the larger size is a multiple of the smaller, the smaller
        // same-ratio power implements the larger by partitioning — and never
        // conversely.
        for n in 2..=4 {
            let small = ScPower::new(n, 1); // ratio n
            for mult in 2..=4 {
                let large = ScPower::new(n * mult, mult); // same ratio n
                assert!(implementable(large, small), "n={n} mult={mult}");
                assert!(!implementable(small, large), "n={n} mult={mult}");
            }
        }
    }

    #[test]
    fn witness_partition_covers_and_respects_m() {
        for n in 1..20 {
            for m in 1..10 {
                let blocks = witness_partition(n, m);
                assert_eq!(blocks.iter().sum::<usize>(), n);
                assert!(blocks.iter().all(|&b| b >= 1 && b <= m));
            }
        }
    }

    #[test]
    fn compare_power_cases() {
        assert_eq!(
            compare_power(ScPower::consensus(2), ScPower::consensus(2)),
            PowerOrder::Equivalent
        );
        assert_eq!(
            compare_power(ScPower::consensus(3), ScPower::consensus(2)),
            PowerOrder::LeftStronger
        );
        assert_eq!(
            compare_power(ScPower::consensus(2), ScPower::consensus(3)),
            PowerOrder::RightStronger
        );
        // (2,1) vs (3,2): consensus for 2 cannot be built from (3,2); can
        // (3,2) be built from (2,1)? bound(3,2,1) = 1+1 = 2 ≤ 2: yes.
        assert_eq!(
            compare_power(ScPower::consensus(2), ScPower::new(3, 2)),
            PowerOrder::LeftStronger
        );
    }

    #[test]
    #[should_panic(expected = "0 < k ≤ n")]
    fn invalid_power_panics() {
        let _ = ScPower::new(2, 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(ScPower::new(4, 2).to_string(), "(4, 2)-SC");
    }
}
