//! The deterministic sub-consensus object family (`O_{n,k}` stand-in).
//!
//! # Relation to the paper
//!
//! *Deterministic Objects: Life Beyond Consensus* (PODC 2016) constructs,
//! for every `n ≥ 2`, an infinite sequence of **deterministic** objects
//! `O_{n,k}` of consensus number `n` whose synchronization power strictly
//! increases with `k`. The full text of the paper is not available to this
//! reproduction (see `DESIGN.md`); only its *properties* are, via the
//! follow-up literature. This module provides a deterministic family with
//! those properties:
//!
//! [`GroupedObject`]`{ group_size: n, capacity: c }` is a deterministic,
//! oblivious, single-operation object. Its state is the sequence of
//! proposals in arrival order; the `p`-th proposal (1-based, `p ≤ c`) is
//! appended and answered with the proposal of the **leader of its arrival
//! group** — proposal number `⌊(p−1)/n⌋·n + 1`. Proposals past the capacity
//! hang undetectably, exactly like the model's set-consensus objects.
//!
//! Consequences (each validated by the experiment suite):
//!
//! * the first `n` arrivals all receive the first proposal ⇒ `n` processes
//!   solve consensus with one object, one step each (consensus number ≥ `n`);
//! * `n + 1` processes cannot solve consensus with the one-shot propose
//!   protocol (the adversary splits them across a group boundary), and the
//!   model checker confirms disagreement for every small instance tried —
//!   matching the paper's claim that the objects' consensus number is
//!   exactly `n`;
//! * with capacity `c = n(k+1)`, the object answers `n(k+1)` proposals with
//!   at most `k+1` distinct values ⇒ it solves `(n(k+1), k+1)`-set
//!   consensus, which registers alone cannot;
//! * by the set-consensus counting bound, the power of the family strictly
//!   increases with `k` at matched system sizes (see [`crate::hierarchy`]).

use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

/// The deterministic grouped-agreement object — this reproduction's stand-in
/// for the paper's `O_{n,k}` family (see the module docs for the exact
/// relationship).
///
/// Single operation: `propose(v)` with `v ≠ ⊥`. Deterministic and oblivious.
///
/// # Examples
///
/// ```
/// use subconsensus_core::GroupedObject;
/// use subconsensus_sim::{ObjectSpec, Op, Value};
///
/// // O_{2,1}: consensus number 2, solves (4, 2)-set consensus.
/// let o = GroupedObject::for_level(2, 1);
/// assert_eq!(o.group_size(), 2);
/// assert_eq!(o.capacity(), 4);
///
/// let s0 = o.initial_state();
/// let first = o.apply(&s0, &Op::unary("propose", Value::Int(7))).unwrap().remove(0);
/// assert_eq!(first.response, Some(Value::Int(7)), "group leader gets own value");
/// let second = o.apply(&first.state, &Op::unary("propose", Value::Int(9))).unwrap().remove(0);
/// assert_eq!(second.response, Some(Value::Int(7)), "same group agrees with the leader");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GroupedObject {
    group_size: usize,
    capacity: usize,
}

const GROUPED: &str = "grouped";

impl GroupedObject {
    /// Creates a grouped object with arrival groups of `group_size` and the
    /// given total proposal `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0` or `capacity == 0`.
    pub fn new(group_size: usize, capacity: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert!(capacity > 0, "capacity must be positive");
        GroupedObject {
            group_size,
            capacity,
        }
    }

    /// Creates the level-`(n, k)` member of the family: groups of `n`,
    /// capacity `n(k+1)` — consensus number `n`, solves
    /// `(n(k+1), k+1)`-set consensus.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn for_level(n: usize, k: usize) -> Self {
        Self::new(n, n * (k + 1))
    }

    /// Returns the arrival-group size `n` (= the object's consensus number).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Returns the total proposal capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of arrival groups, `⌈capacity / group_size⌉` — the
    /// maximum number of distinct responses the object ever produces, i.e.
    /// its set-consensus agreement bound.
    pub fn groups(&self) -> usize {
        self.capacity.div_ceil(self.group_size)
    }

    /// Returns the set-consensus task this object solves directly with the
    /// one-step propose protocol: `(capacity, groups)`-set consensus.
    pub fn set_consensus_power(&self) -> (usize, usize) {
        (self.capacity, self.groups())
    }

    /// Returns the object's consensus number (= `group_size`): the paper's
    /// headline property, validated by experiment E1.
    pub fn consensus_number(&self) -> usize {
        self.group_size
    }
}

impl ObjectSpec for GroupedObject {
    fn type_name(&self) -> &'static str {
        GROUPED
    }

    /// State: `(proposals, count)` — the sequence of answered proposals in
    /// arrival order, and the total number of proposals (including hung
    /// ones).
    fn initial_state(&self) -> Value {
        Value::tup([Value::tup([]), Value::Int(0)])
    }

    fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
        if op.name != "propose" {
            return Err(ObjectError::UnknownOp {
                object: GROUPED,
                op: op.clone(),
            });
        }
        if op.args.len() != 1 {
            return Err(ObjectError::BadArity {
                object: GROUPED,
                op: op.clone(),
                expected: 1,
            });
        }
        let v = op.args[0].clone();
        if v.is_nil() {
            return Err(ObjectError::IllegalOp {
                object: GROUPED,
                detail: "cannot propose ⊥".into(),
            });
        }
        let corrupt = || ObjectError::TypeMismatch {
            object: GROUPED,
            detail: format!("state {state} is not (proposals, count)"),
        };
        let proposals = state.index(0).and_then(Value::as_tup).ok_or_else(corrupt)?;
        let count = state
            .index(1)
            .and_then(Value::as_index)
            .ok_or_else(corrupt)?;
        if count >= self.capacity {
            // Exhausted: hang undetectably (count keeps advancing so the
            // state change is visible to the model checker, not to anyone
            // in-system).
            let next = Value::tup([Value::Tup(proposals.to_vec()), Value::from(count + 1)]);
            return Ok(vec![Outcome::hang(next)]);
        }
        let mut props = proposals.to_vec();
        props.push(v);
        let position = count; // 0-based arrival index of this proposal
        let leader = (position / self.group_size) * self.group_size;
        let response = props[leader].clone();
        let next = Value::tup([Value::Tup(props), Value::from(count + 1)]);
        Ok(vec![Outcome::ret(next, response)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_sim::audit_determinism;

    fn propose(o: &GroupedObject, s: &Value, v: i64) -> Outcome {
        o.apply(s, &Op::unary("propose", Value::Int(v)))
            .unwrap()
            .remove(0)
    }

    #[test]
    fn level_constructor_geometry() {
        let o = GroupedObject::for_level(3, 2);
        assert_eq!(o.group_size(), 3);
        assert_eq!(o.capacity(), 9);
        assert_eq!(o.groups(), 3);
        assert_eq!(o.set_consensus_power(), (9, 3));
        assert_eq!(o.consensus_number(), 3);
    }

    #[test]
    fn ragged_last_group_counts() {
        let o = GroupedObject::new(3, 7);
        assert_eq!(o.groups(), 3, "groups of 3, 3, 1");
    }

    #[test]
    #[should_panic(expected = "group size must be positive")]
    fn zero_group_rejected() {
        let _ = GroupedObject::new(0, 3);
    }

    #[test]
    fn arrival_groups_agree_on_their_leader() {
        let o = GroupedObject::for_level(2, 1); // groups of 2, capacity 4
        let mut s = o.initial_state();
        let responses: Vec<_> = (1..=4)
            .map(|v| {
                let out = propose(&o, &s, v * 10);
                s = out.state.clone();
                out.response.unwrap()
            })
            .collect();
        assert_eq!(
            responses,
            vec![
                Value::Int(10),
                Value::Int(10),
                Value::Int(30),
                Value::Int(30)
            ],
            "arrivals 1–2 get proposal 1; arrivals 3–4 get proposal 3"
        );
    }

    #[test]
    fn at_most_groups_distinct_responses() {
        for (n, cap) in [(2usize, 6usize), (3, 9), (4, 4), (1, 5)] {
            let o = GroupedObject::new(n, cap);
            let mut s = o.initial_state();
            let mut distinct = std::collections::BTreeSet::new();
            for v in 0..cap as i64 {
                let out = propose(&o, &s, v + 100);
                s = out.state;
                distinct.insert(out.response.unwrap());
            }
            assert_eq!(distinct.len(), o.groups(), "n={n} cap={cap}");
        }
    }

    #[test]
    fn overflow_hangs_forever() {
        let o = GroupedObject::new(2, 2);
        let s1 = propose(&o, &o.initial_state(), 1).state;
        let s2 = propose(&o, &s1, 2).state;
        let h = propose(&o, &s2, 3);
        assert!(h.is_hang());
        let h2 = propose(&o, &h.state, 4);
        assert!(h2.is_hang(), "stays exhausted");
    }

    #[test]
    fn deterministic_audit_passes() {
        let o = GroupedObject::for_level(2, 1);
        let ops = [
            Op::unary("propose", Value::Int(1)),
            Op::unary("propose", Value::Int(2)),
        ];
        assert_eq!(audit_determinism(&o, &ops, 6).unwrap(), None);
        assert!(o.is_deterministic());
    }

    #[test]
    fn misuse_rejected() {
        let o = GroupedObject::for_level(2, 0);
        let s = o.initial_state();
        assert!(o.apply(&s, &Op::new("read")).is_err());
        assert!(o.apply(&s, &Op::new("propose")).is_err());
        assert!(o.apply(&s, &Op::unary("propose", Value::Nil)).is_err());
        assert!(o
            .apply(&Value::Int(0), &Op::unary("propose", Value::Int(1)))
            .is_err());
    }

    #[test]
    fn group_size_one_is_a_trivial_object() {
        // n = 1: every arrival is its own leader — the object returns the
        // caller's own value, i.e. it is as weak as a register (consensus
        // number 1, the level the paper leaves open and DISC 2018 resolves).
        let o = GroupedObject::for_level(1, 3);
        let mut s = o.initial_state();
        for v in 1..=4 {
            let out = propose(&o, &s, v);
            assert_eq!(out.response, Some(Value::Int(v)));
            s = out.state;
        }
    }

    #[test]
    fn wrn2_degeneracy_note() {
        // For group size 2, capacity 2 the object behaves like one round of
        // a swap-style 2-agreement: first gets own, second gets first's.
        let o = GroupedObject::new(2, 2);
        let o1 = propose(&o, &o.initial_state(), 5);
        let o2 = propose(&o, &o1.state, 6);
        assert_eq!(o1.response, Some(Value::Int(5)));
        assert_eq!(o2.response, Some(Value::Int(5)));
    }
}
