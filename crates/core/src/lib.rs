//! # subconsensus-core — *Deterministic Objects: Life Beyond Consensus*
//!
//! Executable reproduction of the core of Afek, Ellen & Gafni's PODC 2016
//! paper: deterministic objects whose synchronization power the consensus
//! hierarchy fails to capture.
//!
//! > **Paper provenance.** The paper text available to this reproduction was
//! > a *different* (follow-up) paper; per `DESIGN.md` this crate is built
//! > from the PODC 2016 paper's title, venue, authors and the properties of
//! > its results as reported by the follow-up literature. The exact
//! > `O_{n,k}` object construction is therefore **reconstructed**:
//! > [`GroupedObject`] realizes every property reported for the original
//! > family, and the experiment suite validates each property mechanically.
//!
//! ## What lives here
//!
//! * [`GroupedObject`] — the deterministic family: groups of `n` arrivals
//!   agree on their group leader's value; capacity `n(k+1)`; consensus
//!   number `n`; solves `(n(k+1), k+1)`-set consensus.
//! * [`ScPower`], [`partition_bound`], [`implementable`] — the
//!   set-consensus counting characterization ("Theorem 41") with executable
//!   positive direction.
//! * [`sc_chain`], [`strictly_stronger`], [`grouped_consensus_check`],
//!   [`CapacityGate`] — the hierarchies beyond consensus numbers: the strict
//!   sub-consensus chain of set-consensus powers, the exhaustive
//!   model-checking entry points behind experiments E1–E4, and the
//!   executable downward direction of the object-implementation hierarchy.
//!
//! ## Quick start
//!
//! ```
//! use subconsensus_core::{sc_chain, GroupedObject};
//!
//! // An infinite chain of strictly decreasing synchronization powers
//! // between 2-consensus and registers (a corollary of the paper's
//! // set-consensus characterization):
//! for link in sc_chain(6) {
//!     println!("{link}");
//! }
//!
//! // The deterministic family at consensus level 2:
//! let o = GroupedObject::for_level(2, 3);
//! assert_eq!(o.consensus_number(), 2);
//! assert_eq!(o.set_consensus_power(), (8, 4));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod family;
mod hierarchy;
mod impossibility;
mod power;
mod restrict;

pub use family::GroupedObject;
pub use hierarchy::{
    beats_registers, counting_separates_from_consensus, grouped_consensus_check,
    grouped_task_bound, level_power, sc_chain, strictly_stronger, ChainLink, GroupedConsensusCheck,
};
pub use impossibility::{
    search_binary_consensus, search_binary_consensus_with, set_consensus_32_class, tree_count,
    wrn_class, ProtocolClass, SearchOutcome, SolvabilityWitness,
};
pub use power::{
    compare_power, implementable, partition_bound, witness_partition, PowerOrder, ScPower,
};
pub use restrict::{CapacityGate, RelaxedGate};
