//! Bounded-exhaustive impossibility: enumerate *every* protocol in a
//! bounded class and model-check each one.
//!
//! The paper's negative results quantify over all algorithms, which no
//! finite exploration of a *single* protocol can establish. This module
//! closes a slice of that gap mechanically: for two processes with binary
//! inputs, it enumerates **all** decision-tree protocols of bounded depth
//! over a given object class, and exhaustively model-checks every protocol
//! assignment against binary consensus. A `None` witness is a theorem:
//!
//! > no 2-process protocol in which each process performs at most `d`
//! > operations from the given op menu on one shared object solves binary
//! > consensus.
//!
//! Applied to the `(3, 2)`-set-consensus object and to `WRN₃`, this is the
//! machine-checked kernel of "set consensus / WRN cannot reach
//! 2-consensus" (Theorem 41's negative direction, the follow-up's Lemma
//! 38) for the smallest protocol classes.
//!
//! Protocols using additional registers or deeper trees remain covered
//! only by the hand proofs — stated here to keep the reproduction honest.

use std::collections::HashMap;
use std::sync::Arc;

use subconsensus_modelcheck::{ExploreGoal, ExploreOptions, StateGraph, VerdictQuery};
use subconsensus_sim::{
    Action, ObjId, ObjectSpec, Op, ProcCtx, Protocol, ProtocolError, SimError, SystemBuilder, Value,
};

/// The protocol class: a menu of operations, the possible response values
/// (classes) of those operations, and a depth bound.
#[derive(Clone, Debug)]
pub struct ProtocolClass {
    /// The operations a protocol may invoke (all on the single shared
    /// object).
    pub ops: Vec<Op>,
    /// The exhaustive list of response values operations may produce.
    pub responses: Vec<Value>,
    /// Maximum number of operations before a protocol must decide.
    pub max_depth: usize,
}

/// A decision-tree protocol: decide a binary value, or invoke op `op` and
/// branch on the response class.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Tree {
    Decide(bool),
    Invoke { op: usize, children: Vec<Tree> },
}

fn enumerate_trees(class: &ProtocolClass, depth: usize) -> Vec<Tree> {
    let mut trees = vec![Tree::Decide(false), Tree::Decide(true)];
    if depth == 0 {
        return trees;
    }
    let subtrees = enumerate_trees(class, depth - 1);
    let r = class.responses.len();
    for (op_idx, _op) in class.ops.iter().enumerate() {
        // All combinations of children: |subtrees|^r, odometer-style.
        let mut indices = vec![0usize; r];
        'combos: loop {
            trees.push(Tree::Invoke {
                op: op_idx,
                children: indices.iter().map(|&i| subtrees[i].clone()).collect(),
            });
            let mut pos = 0;
            loop {
                if pos == r {
                    break 'combos;
                }
                indices[pos] += 1;
                if indices[pos] < subtrees.len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
        }
    }
    trees
}

/// Number of trees of depth ≤ `depth` in `class` (sanity/reporting).
pub fn tree_count(class: &ProtocolClass, depth: usize) -> usize {
    if depth == 0 {
        return 2;
    }
    let sub = tree_count(class, depth - 1);
    2 + class.ops.len() * sub.pow(class.responses.len() as u32)
}

/// One enumerated tree, runnable as a simulator protocol.
#[derive(Debug)]
struct TreeProtocol {
    obj: ObjId,
    class: Arc<ProtocolClass>,
    tree: Arc<Tree>,
}

impl Protocol for TreeProtocol {
    fn start(&self, _ctx: &ProcCtx) -> Value {
        Value::tup([]) // the list of response-class indices taken so far
    }

    fn step(
        &self,
        _ctx: &ProcCtx,
        local: &Value,
        resp: Option<&Value>,
    ) -> Result<Action, ProtocolError> {
        // Re-walk the tree along the recorded path, extended by the fresh
        // response.
        let mut path: Vec<usize> = local
            .as_tup()
            .ok_or_else(|| ProtocolError::new("tree: bad local"))?
            .iter()
            .map(|v| {
                v.as_index()
                    .ok_or_else(|| ProtocolError::new("tree: bad path"))
            })
            .collect::<Result<_, _>>()?;
        if let Some(r) = resp {
            let class_idx = self
                .class
                .responses
                .iter()
                .position(|c| c == r)
                .ok_or_else(|| ProtocolError::new(format!("tree: unclassified response {r}")))?;
            path.push(class_idx);
        }
        let mut node: &Tree = &self.tree;
        for &branch in &path {
            match node {
                Tree::Invoke { children, .. } => {
                    node = children
                        .get(branch)
                        .ok_or_else(|| ProtocolError::new("tree: branch out of range"))?;
                }
                Tree::Decide(_) => return Err(ProtocolError::new("tree: walked past a decision")),
            }
        }
        match node {
            Tree::Decide(b) => Ok(Action::Decide(Value::Int(i64::from(*b)))),
            Tree::Invoke { op, .. } => Ok(Action::Invoke {
                local: Value::tup(path.into_iter().map(Value::from)),
                obj: self.obj,
                op: self.class.ops[*op].clone(),
            }),
        }
    }

    // A decision tree never consults `ctx` at all, so two processes running
    // the same tree with the same input are interchangeable.
    fn pid_symmetric(&self) -> bool {
        true
    }

    // Every invocation of every tree targets the single shared object.
    fn obj_footprint(&self, _ctx: &ProcCtx) -> Option<Vec<ObjId>> {
        Some(vec![self.obj])
    }
}

/// A witness that binary consensus *is* solvable in the class: the four
/// tree indices `(p0_input0, p0_input1, p1_input0, p1_input1)`.
pub type SolvabilityWitness = (usize, usize, usize, usize);

/// The outcome of the bounded-exhaustive search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// A solving protocol, if one exists in the class.
    pub witness: Option<SolvabilityWitness>,
    /// Number of trees per (process, input) role.
    pub trees: usize,
    /// Number of (tree pair, input assignment) model-checks performed.
    pub checks: usize,
}

/// Exhaustively decides whether *any* protocol in `class` solves binary
/// consensus for two processes over one object produced by `make_object`.
///
/// A protocol assigns each (process, input) role a decision tree; the
/// search exploits the symmetry `correct(x, y, a, b) = correct(y, x, b, a)`
/// and checks every required input assignment (0,0), (0,1), (1,0), (1,1)
/// by exhaustive model checking (including all object nondeterminism).
///
/// # Errors
///
/// Propagates simulator errors raised during exploration.
pub fn search_binary_consensus<F>(
    make_object: F,
    class: &ProtocolClass,
) -> Result<SearchOutcome, SimError>
where
    F: Fn() -> Box<dyn ObjectSpec>,
{
    // Partial-order reduction is on by default: every per-pair check only
    // consumes terminal verdicts (wait-freedom + decision sets), which POR
    // preserves, and deciding processes collapse to singleton ample sets.
    search_binary_consensus_with(
        make_object,
        class,
        &ExploreOptions::with_max_configs(200_000).with_por(true),
    )
}

/// Like [`search_binary_consensus`], but with explicit exploration
/// options — notably `threads`, which parallelizes each per-pair model
/// check, and `symmetry`, which quotients the interleavings of the two
/// processes whenever a check runs the same tree on both with equal
/// inputs (the diagonal of every `x == y` matrix).
///
/// # Errors
///
/// Propagates simulator errors raised during exploration.
pub fn search_binary_consensus_with<F>(
    make_object: F,
    class: &ProtocolClass,
    opts: &ExploreOptions,
) -> Result<SearchOutcome, SimError>
where
    F: Fn() -> Box<dyn ObjectSpec>,
{
    let class = Arc::new(class.clone());
    let trees: Vec<Arc<Tree>> = enumerate_trees(&class, class.max_depth)
        .into_iter()
        .map(Arc::new)
        .collect();
    let t = trees.len();
    let mut checks = 0usize;

    // correct[x][y] : t×t bitmatrix — tree `a` as P0 with input x, tree
    // `b` as P1 with input y solves consensus on that assignment.
    let mut cache: HashMap<(bool, bool), Vec<bool>> = HashMap::new();
    for (x, y) in [(false, false), (false, true), (true, true)] {
        let mut mat = vec![false; t * t];
        for a in 0..t {
            for b in 0..t {
                // Symmetry within an assignment x == y: correct(a,b) =
                // correct(b,a); compute the lower triangle only.
                if x == y && b < a {
                    mat[a * t + b] = mat[b * t + a];
                    continue;
                }
                checks += 1;
                mat[a * t + b] =
                    pair_correct(&make_object, &class, &trees[a], &trees[b], x, y, opts)?;
            }
        }
        cache.insert((x, y), mat);
    }
    let s00 = &cache[&(false, false)];
    let s01 = &cache[&(false, true)];
    let s11 = &cache[&(true, true)];
    // S10[b][c] = correct(P0: tree b, input 1; P1: tree c, input 0)
    //           = correct(P0: tree c, input 0; P1: tree b, input 1) = s01[c][b].
    for a in 0..t {
        for c in 0..t {
            if !s00[a * t + c] {
                continue;
            }
            for d in 0..t {
                if !s01[a * t + d] {
                    continue;
                }
                for b in 0..t {
                    if s01[c * t + b] && s11[b * t + d] {
                        return Ok(SearchOutcome {
                            witness: Some((a, b, c, d)),
                            trees: t,
                            checks,
                        });
                    }
                }
            }
        }
    }
    Ok(SearchOutcome {
        witness: None,
        trees: t,
        checks,
    })
}

fn pair_correct<F>(
    make_object: &F,
    class: &Arc<ProtocolClass>,
    t0: &Arc<Tree>,
    t1: &Arc<Tree>,
    x: bool,
    y: bool,
    opts: &ExploreOptions,
) -> Result<bool, SimError>
where
    F: Fn() -> Box<dyn ObjectSpec>,
{
    let mut b = SystemBuilder::new();
    let obj = b.add_boxed_object(make_object());
    let p0: Arc<dyn Protocol> = Arc::new(TreeProtocol {
        obj,
        class: Arc::clone(class),
        tree: Arc::clone(t0),
    });
    // Same tree ⇒ share the protocol instance, so the builder's automatic
    // symmetry detection (pointer + input equality) groups the two
    // processes on the diagonal checks and a symmetry-enabled exploration
    // quotients their interleavings.
    let p1: Arc<dyn Protocol> = if Arc::ptr_eq(t0, t1) {
        Arc::clone(&p0)
    } else {
        Arc::new(TreeProtocol {
            obj,
            class: Arc::clone(class),
            tree: Arc::clone(t1),
        })
    };
    b.add_process(p0, Value::Int(i64::from(x)));
    b.add_process(p1, Value::Int(i64::from(y)));
    let spec = b.build();
    let valid: Vec<Value> = if x == y {
        vec![Value::Int(i64::from(x))]
    } else {
        vec![Value::Int(0), Value::Int(1)]
    };
    // Streaming-verdict goal: wait-freedom + agreement (at most one
    // distinct decision) + validity are accumulated *during* exploration,
    // so the check exits at the first refuted terminal or cycle and never
    // freezes the CSR. `holds() == Some(true)` is exactly the old post-hoc
    // acceptance: completion under wait-freedom means every process
    // decides at every terminal (so "≤ 1 distinct" is "exactly 1"), and a
    // truncated run can never answer `Some(true)`.
    let goal = ExploreGoal::Verdict(
        VerdictQuery::new()
            .require_wait_freedom()
            .require_max_distinct(1)
            .require_valid_values(valid),
    );
    let graph = match StateGraph::explore(&spec, &opts.clone().with_goal(goal)) {
        Ok(g) => g,
        // A tree may misuse the object (e.g. re-walk past a decision on an
        // unclassified response); such protocols simply do not solve
        // consensus.
        Err(_) => return Ok(false),
    };
    let verdict = graph
        .verdict()
        .expect("verdict-goal exploration yields a verdict");
    Ok(verdict.holds() == Some(true))
}

/// The one-step protocol class over a `(3, 2)`-set-consensus object with
/// binary proposals.
pub fn set_consensus_32_class(max_depth: usize) -> ProtocolClass {
    ProtocolClass {
        ops: vec![
            Op::unary("propose", Value::Int(0)),
            Op::unary("propose", Value::Int(1)),
        ],
        responses: vec![Value::Int(0), Value::Int(1)],
        max_depth,
    }
}

/// The protocol class over a `WRN_k` object with binary values: all `wrn`
/// index/value combinations; responses `⊥`, 0 or 1.
pub fn wrn_class(k: usize, max_depth: usize) -> ProtocolClass {
    let mut ops = Vec::new();
    for i in 0..k {
        for v in 0..2i64 {
            ops.push(Op::binary("wrn", Value::from(i), Value::Int(v)));
        }
    }
    ProtocolClass {
        ops,
        responses: vec![Value::Nil, Value::Int(0), Value::Int(1)],
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subconsensus_objects::{Consensus, SetConsensus};

    #[test]
    fn tree_counts_match_the_formula() {
        let c = set_consensus_32_class(1);
        assert_eq!(tree_count(&c, 0), 2);
        assert_eq!(tree_count(&c, 1), 2 + 2 * 4);
        assert_eq!(enumerate_trees(&c, 1).len(), tree_count(&c, 1));
        let w = wrn_class(3, 1);
        assert_eq!(tree_count(&w, 1), 2 + 6 * 8);
        assert_eq!(enumerate_trees(&w, 1).len(), tree_count(&w, 1));
    }

    #[test]
    fn consensus_object_class_has_a_witness() {
        // Sanity: over a *consensus* object the search must FIND a protocol
        // (propose your input, decide the answer).
        let class = ProtocolClass {
            ops: vec![
                Op::unary("propose", Value::Int(0)),
                Op::unary("propose", Value::Int(1)),
            ],
            responses: vec![Value::Int(0), Value::Int(1)],
            max_depth: 1,
        };
        let out = search_binary_consensus(|| Box::new(Consensus::unbounded()), &class).unwrap();
        assert!(
            out.witness.is_some(),
            "consensus object must admit a protocol"
        );
        assert_eq!(out.trees, 10);
    }

    #[test]
    fn no_one_step_protocol_over_3_2_set_consensus() {
        // Machine-checked: NO protocol in which each process performs at
        // most one propose on one (3,2)-SC object solves binary consensus.
        let out = search_binary_consensus(
            || Box::new(SetConsensus::new(3, 2).unwrap()),
            &set_consensus_32_class(1),
        )
        .unwrap();
        assert_eq!(out.witness, None, "impossibility at depth 1");
        assert!(out.checks > 100);
    }

    #[test]
    fn no_one_step_protocol_over_wrn3() {
        // Machine-checked Lemma-38 kernel: NO one-step WRN₃ protocol solves
        // binary consensus (all 50 trees per role, all index/value ops).
        let out =
            search_binary_consensus(|| Box::new(subconsensus_wrn_shim::wrn3()), &wrn_class(3, 1))
                .unwrap();
        assert_eq!(out.witness, None);
        assert_eq!(out.trees, 50);
    }

    /// A local WRN₃ (avoids a dependency cycle with the extension crate).
    mod subconsensus_wrn_shim {
        use subconsensus_sim::{ObjectError, ObjectSpec, Op, Outcome, Value};

        #[derive(Debug)]
        pub struct Wrn3;

        pub fn wrn3() -> Wrn3 {
            Wrn3
        }

        impl ObjectSpec for Wrn3 {
            fn type_name(&self) -> &'static str {
                "wrn3"
            }

            fn initial_state(&self) -> Value {
                Value::nil_tup(3)
            }

            fn apply(&self, state: &Value, op: &Op) -> Result<Vec<Outcome>, ObjectError> {
                let i = op.args[0].as_index().ok_or(ObjectError::TypeMismatch {
                    object: "wrn3",
                    detail: "bad index".into(),
                })?;
                let v = op.args[1].clone();
                let next = state.with_index(i, v).ok_or(ObjectError::TypeMismatch {
                    object: "wrn3",
                    detail: "bad state".into(),
                })?;
                let read = next.index((i + 1) % 3).cloned().expect("in range");
                Ok(vec![Outcome::ret(next, read)])
            }
        }
    }
}
