//! The hierarchies beyond consensus numbers — the paper's headline theorems,
//! in executable form.
//!
//! The paper proves: *for every `n ≥ 2` there is an infinite sequence of
//! deterministic objects `O_{n,k}` of consensus number `n` such that
//! `O_{n,k}` cannot non-blocking implement `O_{n,k+1}` in a system of
//! `nk + n + k` processes.* Consensus number alone therefore does not
//! characterize deterministic objects; in particular Common2 is refuted.
//!
//! Two distinct hierarchies are at play, and this module mechanizes the
//! checkable faces of both:
//!
//! 1. **The set-consensus implementation preorder** ("Theorem 41", the
//!    counting characterization in [`crate::partition_bound`]). A corollary
//!    is an infinite *strictly decreasing* chain of powers between
//!    2-consensus and registers:
//!    `(2,1)-SC ≻ (3,2)-SC ≻ (4,3)-SC ≻ …` — see [`sc_chain`] /
//!    [`strictly_stronger`]. Every link is verified in both directions by
//!    the predicate and, on the positive side, by executable partition
//!    protocols (experiment E3).
//!
//! 2. **The object-implementation hierarchy at a fixed consensus level**
//!    `n ≥ 2` — the paper's own `O_{n,k}` result. Tasks cannot see it: *any*
//!    object of consensus number `n` solves exactly the
//!    `(N, ⌈N/n⌉)`-set-consensus tasks (partition into `n`-blocks;
//!    [`grouped_task_bound`] and experiment E4 demonstrate the matching
//!    upper bound with [`GroupedObject`]s). The hierarchy lives strictly in
//!    the *non-blocking implementation relation between objects*:
//!    * the **downward** direction is executable — a higher-capacity family
//!      member implements a lower-capacity one by capacity gating
//!      ([`crate::CapacityGate`], linearizability-checked);
//!    * the **upward** impossibility (`O_{n,k}` cannot implement
//!      `O_{n,k+1}` at `nk + n + k` processes) is the paper's hand proof
//!      over *all* algorithms, which no finite exploration can replace; the
//!      experiment suite instead refutes the natural spillover construction
//!      by adversarial exhaustion (experiment E4b) and documents the gap.
//!
//! The consensus-number claim itself — every family level has consensus
//! number exactly `n` — is model-checked exhaustively for small instances
//! by [`grouped_consensus_check`] (experiment E1).

use crate::family::GroupedObject;
use crate::power::{implementable, partition_bound, ScPower};

/// The set-consensus power of family level `(n, k)` when fully stuffed:
/// `(n(k+1), k+1)`-set consensus.
pub fn level_power(n: usize, k: usize) -> ScPower {
    ScPower::new(n * (k + 1), k + 1)
}

/// `true` iff `a` is strictly stronger than `b` in the implementation
/// preorder: `a`-objects implement `b` but not vice versa.
pub fn strictly_stronger(a: ScPower, b: ScPower) -> bool {
    implementable(b, a) && !implementable(a, b)
}

/// One link of the sub-consensus chain: `(k, k-1)-SC ≻ (k+1, k)-SC`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// The stronger power, `(k, k-1)`.
    pub stronger: ScPower,
    /// The weaker power, `(k+1, k)`.
    pub weaker: ScPower,
    /// The partition bound showing the weaker cannot build the stronger:
    /// the fewest distinct values `(k+1, k)`-objects force on `k` processes.
    pub refuting_bound: usize,
}

impl std::fmt::Display for ChainLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ≻ {}  (weaker forces ≥ {} values on {} processes)",
            self.stronger, self.weaker, self.refuting_bound, self.stronger.n
        )
    }
}

/// Builds the infinite (here: finite prefix) chain of strictly decreasing
/// set-consensus powers between 2-consensus and registers:
/// `(2,1) ≻ (3,2) ≻ … ≻ (k_max, k_max - 1)`.
///
/// Every link is verified in both directions against the counting
/// characterization.
///
/// # Panics
///
/// Panics if `k_max < 3` or if a link unexpectedly fails to verify (it
/// never does — this is the theorem).
pub fn sc_chain(k_max: usize) -> Vec<ChainLink> {
    assert!(k_max >= 3, "the chain starts at (2,1) ≻ (3,2)");
    (2..k_max)
        .map(|k| {
            let stronger = ScPower::new(k, k - 1);
            let weaker = ScPower::new(k + 1, k);
            assert!(
                strictly_stronger(stronger, weaker),
                "chain link (k={k}) failed — should be impossible"
            );
            ChainLink {
                stronger,
                weaker,
                refuting_bound: partition_bound(stronger.n, weaker.n, weaker.k),
            }
        })
        .collect()
}

/// The best (fewest) number of distinct decisions achievable among `procs`
/// processes using copies of consensus-number-`n` grouped objects:
/// `⌈procs / n⌉`, by partitioning into `n`-blocks.
///
/// This is the task-level *ceiling* shared by **every** object of consensus
/// number `n` — the reason the paper's `O_{n,k}` hierarchy must be measured
/// in the object-implementation relation rather than by tasks.
pub fn grouped_task_bound(n: usize, procs: usize) -> usize {
    procs.div_ceil(n)
}

/// Whether the task-level counting bound can separate family level `(n, k)`
/// from plain `n`-consensus objects. Always `false` (see module docs): both
/// realize exactly the `(N, ⌈N/n⌉)` task family. Kept as an explicit,
/// documented boundary between what this reproduction proves mechanically
/// and what the paper proves by hand.
pub fn counting_separates_from_consensus(n: usize, k: usize) -> bool {
    let level = level_power(n, k);
    let consensus_bound = partition_bound(level.n, n, 1);
    level.k < consensus_bound
}

/// Whether family level `(n, k)` exceeds read-write registers at its own
/// system size: registers guarantee nothing better than everyone deciding
/// its own input, so any `k + 1 < n(k+1)` bound beats them. Holds for every
/// `n ≥ 2`.
pub fn beats_registers(n: usize, k: usize) -> bool {
    let p = level_power(n, k);
    p.k < p.n
}

/// Result of exhaustively model-checking the grouped object's consensus
/// behavior at a given process count (experiment E1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupedConsensusCheck {
    /// The family level checked.
    pub n: usize,
    /// The capacity parameter checked.
    pub k: usize,
    /// The number of processes in the checked system.
    pub procs: usize,
    /// Whether the one-step propose protocol wait-free solves consensus for
    /// `procs` processes over one object — exhaustive over all schedules.
    pub solves_consensus: bool,
    /// The worst-case number of distinct decisions observed. Exact when the
    /// check explored every schedule (always the case when consensus is
    /// solved); a lower bound (≥ 2) when the streaming check exited early
    /// at the first refuted terminal.
    pub max_distinct: usize,
    /// The number of configurations explored (up to the early exit).
    pub configs: usize,
}

/// Exhaustively model-checks the one-step propose protocol over a single
/// `GroupedObject::for_level(n, k)` with `procs` processes proposing
/// distinct values (experiment E1).
///
/// For `procs ≤ n` this *proves* consensus is solved (consensus number
/// ≥ n); for `procs = n + 1` it exhibits the disagreeing schedules the
/// paper's consensus-number-≤-n argument predicts.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn grouped_consensus_check(
    n: usize,
    k: usize,
    procs: usize,
) -> Result<GroupedConsensusCheck, subconsensus_sim::SimError> {
    use std::sync::Arc;
    use subconsensus_modelcheck::{ExploreGoal, ExploreOptions, StateGraph, VerdictQuery};
    use subconsensus_protocols::ProposeDecide;
    use subconsensus_sim::{Protocol, SystemBuilder, Value};

    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    let inputs: Vec<Value> = (0..procs).map(|i| Value::Int(i as i64 + 1)).collect();
    b.add_processes(p, inputs.iter().cloned());
    let spec = b.build();
    // One streaming-verdict exploration replaces the former pair of full
    // explorations (task harness + max-distinct pass): wait-freedom,
    // agreement and validity accumulate as terminals are merged, the
    // freeze/reverse-CSR phases are skipped, and a refuted check stops at
    // the first disagreeing (or hung) schedule.
    let goal = ExploreGoal::Verdict(
        VerdictQuery::new()
            .require_wait_freedom()
            .require_max_distinct(1)
            .require_valid_values(inputs),
    );
    let graph = StateGraph::explore(&spec, &ExploreOptions::default().with_goal(goal))?;
    let verdict = graph
        .verdict()
        .expect("verdict-goal exploration yields a verdict");
    Ok(GroupedConsensusCheck {
        n,
        k,
        procs,
        solves_consensus: verdict.holds() == Some(true),
        max_distinct: verdict.max_distinct.lower,
        configs: verdict.configs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_power_matches_object_geometry() {
        for n in 1..5 {
            for k in 0..4 {
                let o = GroupedObject::for_level(n, k);
                let p = level_power(n, k);
                assert_eq!(o.set_consensus_power(), (p.n, p.k));
            }
        }
    }

    #[test]
    fn the_sub_consensus_chain_is_strict_and_long() {
        let chain = sc_chain(12);
        assert_eq!(chain.len(), 10);
        for link in &chain {
            assert!(strictly_stronger(link.stronger, link.weaker));
            assert!(link.refuting_bound > link.stronger.k);
            assert!(link.to_string().contains("≻"));
        }
        // Transitively: the head strictly exceeds the tail.
        let head = chain.first().unwrap().stronger;
        let tail = chain.last().unwrap().weaker;
        assert!(strictly_stronger(head, tail));
    }

    #[test]
    fn chain_sits_strictly_below_2_consensus() {
        // (2,1) IS 2-consensus; every later power cannot build it.
        for k in 3..10 {
            let p = ScPower::new(k, k - 1);
            assert!(!implementable(ScPower::consensus(2), p), "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "chain starts")]
    fn short_chain_panics() {
        let _ = sc_chain(2);
    }

    #[test]
    fn task_bound_is_blind_within_a_consensus_level() {
        // The documented limit: tasks cannot separate family levels at the
        // same n, nor the family from n-consensus.
        for n in 2..=4 {
            for k in 0..=3 {
                assert!(!counting_separates_from_consensus(n, k), "n={n} k={k}");
            }
            for procs in 1..=12 {
                assert_eq!(grouped_task_bound(n, procs), procs.div_ceil(n));
            }
        }
    }

    #[test]
    fn every_level_beats_registers_for_n_ge_2() {
        for n in 2..=5 {
            for k in 0..=4 {
                assert!(beats_registers(n, k));
            }
        }
        assert!(
            !beats_registers(1, 3),
            "n = 1 degenerates to register power"
        );
    }

    #[test]
    fn e1_consensus_number_small_instances() {
        // Exhaustive: n processes solve consensus with O_{n,k}; n+1 do not
        // (with the one-step protocol).
        for (n, k) in [(1usize, 1usize), (2, 0), (2, 1), (3, 0)] {
            let ok = grouped_consensus_check(n, k, n).unwrap();
            assert!(ok.solves_consensus, "n={n} k={k}: {ok:?}");
            assert_eq!(ok.max_distinct, 1);

            let over = grouped_consensus_check(n, k, n + 1).unwrap();
            assert!(!over.solves_consensus, "n={n} k={k}: {over:?}");
            if (n + 1) <= GroupedObject::for_level(n, k).capacity() {
                assert!(over.max_distinct >= 2, "disagreement exhibited: {over:?}");
            }
        }
    }
}
