//! `subconsensus` — command-line front end to the reproduction.
//!
//! ```text
//! subconsensus hierarchy [K_MAX]                 the sub-consensus chain
//! subconsensus consensus-number N K PROCS        E1: exhaustive check of O_{n,k}
//! subconsensus set-consensus N K [SEEDS]         E2: worst-case distinct decisions
//! subconsensus characterize N K M J              E3: Theorem-41 verdict + bound
//! subconsensus wrn K [SEEDS]                     E8: Algorithm 2 over WRN_k
//! subconsensus adversary                         broken register consensus, replayed
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use subconsensus::core::{
    grouped_consensus_check, implementable, partition_bound, sc_chain, GroupedObject, ScPower,
};
use subconsensus::objects::RegisterArray;
use subconsensus::protocols::{ProposeDecide, WriteReadMin};
use subconsensus::sim::{
    run, FirstOutcome, Protocol, RandomScheduler, ReplayScheduler, RunOptions, SystemBuilder, Value,
};
use subconsensus::wrn::{Wrn, WrnPropose};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         subconsensus hierarchy [K_MAX]\n  \
         subconsensus consensus-number N K PROCS\n  \
         subconsensus set-consensus N K [SEEDS]\n  \
         subconsensus characterize N K M J\n  \
         subconsensus wrn K [SEEDS]\n  \
         subconsensus adversary"
    );
    ExitCode::from(2)
}

fn parse<T: std::str::FromStr>(arg: Option<&String>) -> Option<T> {
    arg.and_then(|s| s.parse().ok())
}

fn cmd_hierarchy(k_max: usize) -> ExitCode {
    println!("the sub-consensus chain up to k = {k_max}:");
    for link in sc_chain(k_max.max(3)) {
        println!("  {link}");
    }
    ExitCode::SUCCESS
}

fn cmd_consensus_number(n: usize, k: usize, procs: usize) -> ExitCode {
    match grouped_consensus_check(n, k, procs) {
        Ok(r) => {
            println!(
                "O_{{{n},{k}}} with {procs} processes: consensus {} (worst-case {} distinct \
                 decisions, {} configurations explored)",
                if r.solves_consensus {
                    "SOLVED wait-free"
                } else {
                    "NOT solved"
                },
                r.max_distinct,
                r.configs
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_set_consensus(n: usize, k: usize, seeds: u64) -> ExitCode {
    let procs = n * (k + 1);
    let mut b = SystemBuilder::new();
    let obj = b.add_object(GroupedObject::for_level(n, k));
    let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
    b.add_processes(p, (0..procs).map(|i| Value::Int(i as i64 + 1)));
    let spec = b.build();
    let mut worst = 0;
    for seed in 0..seeds {
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run");
        worst = worst.max(out.decided_values().len());
    }
    println!(
        "O_{{{n},{k}}}: {procs} processes, {seeds} schedules — worst case {worst} distinct \
         decisions (bound {})",
        k + 1
    );
    if worst <= k + 1 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_characterize(n: usize, k: usize, m: usize, j: usize) -> ExitCode {
    if k == 0 || k > n || j == 0 || j > m {
        eprintln!("error: require 0 < K ≤ N and 0 < J ≤ M");
        return ExitCode::from(2);
    }
    let target = ScPower::new(n, k);
    let source = ScPower::new(m, j);
    let bound = partition_bound(n, m, j);
    let yes = implementable(target, source);
    println!(
        "({n}, {k})-set consensus from ({m}, {j})-set-consensus objects + registers: {}",
        if yes { "IMPLEMENTABLE" } else { "IMPOSSIBLE" }
    );
    println!("  partition bound: {m}-blocks force ≥ {bound} distinct values among {n} processes");
    ExitCode::SUCCESS
}

fn cmd_wrn(k: usize, seeds: u64) -> ExitCode {
    if k < 2 {
        eprintln!("error: WRN_k requires k ≥ 2");
        return ExitCode::from(2);
    }
    let mut b = SystemBuilder::new();
    let obj = b.add_object(Wrn::new(k));
    let p: Arc<dyn Protocol> = Arc::new(WrnPropose::new(obj));
    b.add_processes(p, (0..k).map(|i| Value::Int(100 + i as i64)));
    let spec = b.build();
    let mut worst = 0;
    for seed in 0..seeds {
        let mut sched = RandomScheduler::seeded(seed);
        let out = run(&spec, &mut sched, &mut FirstOutcome, &RunOptions::default()).expect("run");
        worst = worst.max(out.decided_values().len());
    }
    println!(
        "WRN_{k} (consensus number {}): {k} processes, {seeds} schedules — worst case \
         {worst} distinct decisions (bound {})",
        if k >= 3 { 1 } else { 2 },
        k - 1
    );
    ExitCode::SUCCESS
}

fn cmd_adversary() -> ExitCode {
    use subconsensus::modelcheck::{ExploreOptions, StateGraph};
    let mut b = SystemBuilder::new();
    let regs = b.add_object(RegisterArray::new(2));
    let p: Arc<dyn Protocol> = Arc::new(WriteReadMin::new(regs));
    b.add_processes(p, [Value::Int(1), Value::Int(2)]);
    let spec = b.build();
    let graph = StateGraph::explore(&spec, &ExploreOptions::default()).expect("explore");
    match graph.witness_schedule(|c| c.is_final() && c.decided_values().len() == 2) {
        Some(schedule) => {
            let shown: Vec<String> = schedule.iter().map(ToString::to_string).collect();
            println!("registers cannot solve consensus; a disagreeing schedule:");
            println!("  {}", shown.join(" → "));
            let mut replay = ReplayScheduler::new(schedule);
            let out = run(
                &spec,
                &mut replay,
                &mut FirstOutcome,
                &RunOptions::default().traced(),
            )
            .expect("replay");
            print!("{}", out.trace);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unexpected: no disagreeing schedule found");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("hierarchy") => cmd_hierarchy(parse(args.get(1)).unwrap_or(10)),
        Some("consensus-number") => {
            match (parse(args.get(1)), parse(args.get(2)), parse(args.get(3))) {
                (Some(n), Some(k), Some(procs)) => cmd_consensus_number(n, k, procs),
                _ => usage(),
            }
        }
        Some("set-consensus") => match (parse(args.get(1)), parse(args.get(2))) {
            (Some(n), Some(k)) => cmd_set_consensus(n, k, parse(args.get(3)).unwrap_or(500)),
            _ => usage(),
        },
        Some("characterize") => match (
            parse(args.get(1)),
            parse(args.get(2)),
            parse(args.get(3)),
            parse(args.get(4)),
        ) {
            (Some(n), Some(k), Some(m), Some(j)) => cmd_characterize(n, k, m, j),
            _ => usage(),
        },
        Some("wrn") => match parse(args.get(1)) {
            Some(k) => cmd_wrn(k, parse(args.get(2)).unwrap_or(500)),
            None => usage(),
        },
        Some("adversary") => cmd_adversary(),
        _ => usage(),
    }
}
