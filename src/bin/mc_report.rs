//! `mc-report` — inspect the model checker's telemetry artifacts.
//!
//! Std-only companion CLI to the exploration engine's persistent
//! observability layer. Four subcommands, one per artifact:
//!
//! * `ledger <runs.jsonl>` — pretty-print an `MC_RUN_LOG` run ledger:
//!   per-run identity (spec hash, git revision, wall time), options,
//!   outcome, a per-phase wall-time breakdown, shard balance and spill
//!   stats.
//! * `tail <status.json>` — render an `MC_STATUS_FILE` snapshot (pass
//!   `--follow` to poll until the run reports `done`).
//! * `validate <trace.jsonl>` — check an `MC_TRACE` level log: every line
//!   parses, carries the level-span schema, and levels count up from 0.
//! * `diff <a> <b>` — compare two `BENCH_modelcheck.json` files (or two
//!   run-ledger JSONL files) row by row and report per-fixture regression
//!   deltas; exits non-zero iff a deterministic graph fact regressed.
//!
//! Everything is parsed with the in-tree `subconsensus_sim::json` parser —
//! the same one the round-trip unit suite runs every hand-built emitter
//! through.

use std::fmt::Write as _;
use std::process::ExitCode;

use subconsensus_sim::json::JsonValue;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mc-report <command> [args]\n\
         \n\
         commands:\n\
           ledger <runs.jsonl> [--last N]   pretty-print an MC_RUN_LOG run ledger\n\
           tail <status.json> [--follow]    render an MC_STATUS_FILE snapshot\n\
           validate <trace.jsonl>           validate an MC_TRACE level log\n\
           diff <a> <b>                     diff two BENCH_modelcheck.json files\n\
                                            (or two run-ledger JSONL files)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => return usage(),
    };
    let result = match (cmd, rest) {
        ("ledger", [path]) => ledger(path, usize::MAX),
        ("ledger", [path, flag, n]) if flag == "--last" => match n.parse() {
            Ok(n) => ledger(path, n),
            Err(_) => return usage(),
        },
        ("tail", [path]) => tail(path, false),
        ("tail", [path, flag]) if flag == "--follow" => tail(path, true),
        ("validate", [path]) => validate(path),
        ("diff", [a, b]) => diff(a, b),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mc-report: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn num(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn int(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn ms(ns: f64) -> String {
    format!("{:.2}ms", ns / 1e6)
}

// ---------------------------------------------------------------- ledger

fn ledger(path: &str, last: usize) -> Result<ExitCode, String> {
    let text = read(path)?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(format!("{path}: empty ledger"));
    }
    let skip = lines.len().saturating_sub(last);
    for (i, line) in lines.iter().enumerate().skip(skip) {
        let rec = JsonValue::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        print!("{}", render_run(&rec, i + 1));
    }
    println!(
        "{} run{} in {path}",
        lines.len(),
        if lines.len() == 1 { "" } else { "s" }
    );
    Ok(ExitCode::SUCCESS)
}

fn render_run(rec: &JsonValue, n: usize) -> String {
    let mut out = String::new();
    let spec = rec
        .get("spec_hash")
        .and_then(JsonValue::as_str)
        .unwrap_or("?");
    let rev = rec
        .get("git_revision")
        .and_then(JsonValue::as_str)
        .unwrap_or("?");
    let started = int(rec, "started_unix_ms");
    let wall = int(rec, "ended_unix_ms").saturating_sub(started);
    let _ = writeln!(
        out,
        "run {n}: spec {spec}  rev {rev}  started {}.{:03} (unix)  wall {wall}ms",
        started / 1000,
        started % 1000
    );
    if let Some(opts) = rec.get("options") {
        let budget = match opts.get("store_budget_bytes") {
            Some(JsonValue::Number(b)) => format!(", budget {b} B"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "  options: goal {}, max_configs {}, threads {}, shards {}, \
             symmetry {}, por {}, interned {}, store {}{budget}",
            opts.get("goal").and_then(JsonValue::as_str).unwrap_or("?"),
            int(opts, "max_configs"),
            int(opts, "threads"),
            int(opts, "shards"),
            opts.get("symmetry")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            opts.get("por")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            opts.get("interned")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            opts.get("store").and_then(JsonValue::as_str).unwrap_or("?"),
        );
    }
    if let Some(outcome) = rec.get("outcome") {
        match outcome.get("kind").and_then(JsonValue::as_str) {
            Some("verdict") => {
                if let Some(v) = outcome.get("verdict") {
                    let holds =
                        v.get("holds")
                            .map_or("undecided".to_string(), |h| match h.as_bool() {
                                Some(b) => b.to_string(),
                                None => "undecided".to_string(),
                            });
                    let cause = v
                        .get("cause")
                        .and_then(|c| c.get("kind"))
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?");
                    let _ = writeln!(
                        out,
                        "  outcome: verdict holds={holds} ({cause}), {} configs, \
                         {} terminals",
                        int(v, "configs"),
                        int(v, "terminals")
                    );
                }
            }
            _ => {
                let _ = writeln!(
                    out,
                    "  outcome: graph {} configs, {} edges, {} terminals{}",
                    int(outcome, "configs"),
                    int(outcome, "edges"),
                    int(outcome, "terminals"),
                    if outcome.get("truncated").and_then(JsonValue::as_bool) == Some(true) {
                        " [TRUNCATED]"
                    } else {
                        ""
                    }
                );
            }
        }
    }
    if let Some(metrics) = rec.get("metrics") {
        out.push_str(&render_metrics(metrics));
    }
    out
}

fn render_metrics(metrics: &JsonValue) -> String {
    let mut out = String::new();
    match metrics.get("truncation") {
        Some(JsonValue::Object(_)) => {
            let t = metrics.get("truncation").unwrap();
            let _ = writeln!(
                out,
                "  truncation: {} ({})",
                t.get("cause").and_then(JsonValue::as_str).unwrap_or("?"),
                t.get("cap")
                    .or_else(|| t.get("budget"))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0)
            );
        }
        _ => {
            let _ = writeln!(out, "  truncation: none (complete)");
        }
    }
    if let Some(phases) = metrics.get("phases") {
        let total = num(phases, "total_ns");
        if total > 0.0 {
            let _ = writeln!(out, "  phase breakdown (total {}):", ms(total));
            for name in [
                "expand_ns",
                "canonicalize_ns",
                "por_ns",
                "dedup_ns",
                "merge_ns",
                "freeze_ns",
                "reverse_csr_ns",
                "other_ns",
            ] {
                let v = num(phases, name);
                let _ = writeln!(
                    out,
                    "    {:<16} {:>12}  {:5.1}%",
                    name.trim_end_matches("_ns"),
                    ms(v),
                    100.0 * v / total
                );
            }
        } else {
            let _ = writeln!(out, "  phase breakdown: untimed");
        }
    }
    if let Some(shards) = metrics.get("shards").and_then(JsonValue::as_array) {
        if !shards.is_empty() {
            let nodes: Vec<u64> = shards.iter().map(|s| int(s, "nodes")).collect();
            let min = nodes.iter().min().copied().unwrap_or(0);
            let max = nodes.iter().max().copied().unwrap_or(0);
            let sent: u64 = shards.iter().map(|s| int(s, "sent")).sum();
            let balance = if max > 0 {
                min as f64 / max as f64
            } else {
                1.0
            };
            let _ = writeln!(
                out,
                "  shards: {} shards, nodes {min}..{max} (balance {balance:.2}), \
                 {sent} cross-shard sends",
                shards.len()
            );
        }
    }
    if let Some(store) = metrics.get("store") {
        if !store.is_null() {
            let _ = writeln!(
                out,
                "  spill: {} B out, {} reloads, hot hit rate {:.2}",
                int(store, "spilled_bytes"),
                int(store, "reload_count"),
                num(store, "hot_hit_rate")
            );
        }
    }
    let _ = writeln!(
        out,
        "  counters: {} configs, {} edges, {} generated ({} dedup), \
         {} expansions, {} levels, peak ≈ {} B",
        int(metrics, "configs"),
        int(metrics, "edges"),
        int(metrics, "generated"),
        int(metrics, "dedup_hits"),
        int(metrics, "expansions"),
        metrics
            .get("levels")
            .and_then(JsonValue::as_array)
            .map_or(0, <[JsonValue]>::len),
        int(metrics, "peak_bytes")
    );
    out
}

// ------------------------------------------------------------------ tail

fn tail(path: &str, follow: bool) -> Result<ExitCode, String> {
    loop {
        let text = read(path)?;
        let v = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let state = v.get("state").and_then(JsonValue::as_str).unwrap_or("?");
        let eta = match v.get("eta_secs").and_then(JsonValue::as_f64) {
            Some(eta) => format!(", eta ~{eta:.0}s"),
            None => String::new(),
        };
        let spilled = int(&v, "spilled_bytes");
        let spill = if spilled > 0 {
            format!(", {spilled} B spilled")
        } else {
            String::new()
        };
        println!(
            "[{state}] pid {}: level {}, {} explored, {} frontier, \
             {:.0} configs/sec ({:.0} recent), bound remaining {}{eta}{spill}",
            int(&v, "pid"),
            int(&v, "level"),
            int(&v, "explored"),
            int(&v, "frontier"),
            num(&v, "configs_per_sec"),
            num(&v, "recent_configs_per_sec"),
            int(&v, "bound_remaining")
        );
        if !follow || state == "done" {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

// -------------------------------------------------------------- validate

fn validate(path: &str) -> Result<ExitCode, String> {
    let text = read(path)?;
    let mut levels = 0u64;
    let mut last_nodes = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = JsonValue::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        for key in [
            "level",
            "items",
            "new_nodes",
            "nodes",
            "edges",
            "elapsed_ns",
        ] {
            if rec.get(key).and_then(JsonValue::as_u64).is_none() {
                return Err(format!(
                    "{path}:{}: missing or non-integer key \"{key}\"",
                    i + 1
                ));
            }
        }
        let level = int(&rec, "level");
        if level != levels {
            return Err(format!(
                "{path}:{}: level {level}, expected {levels} (levels must count up from 0)",
                i + 1
            ));
        }
        let nodes = int(&rec, "nodes");
        if nodes < last_nodes {
            return Err(format!(
                "{path}:{}: nodes shrank {last_nodes} -> {nodes}",
                i + 1
            ));
        }
        last_nodes = nodes;
        levels += 1;
    }
    if levels == 0 {
        return Err(format!("{path}: no level records"));
    }
    println!("ok: {levels} level records, {last_nodes} nodes final");
    Ok(ExitCode::SUCCESS)
}

// ------------------------------------------------------------------ diff

/// A row identity within a bench file: every deterministic dimension of
/// the run (timing fields deliberately excluded).
fn row_key(row: &JsonValue) -> String {
    format!(
        "{} goal={} store={} threads={} shards={} sym={} por={}",
        row.get("fixture")
            .and_then(JsonValue::as_str)
            .unwrap_or("?"),
        row.get("goal")
            .and_then(JsonValue::as_str)
            .unwrap_or("full"),
        row.get("store")
            .and_then(JsonValue::as_str)
            .unwrap_or("mem"),
        int(row, "threads"),
        int(row, "shards"),
        row.get("symmetry")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        row.get("por").and_then(JsonValue::as_bool).unwrap_or(false),
    )
}

fn diff(path_a: &str, path_b: &str) -> Result<ExitCode, String> {
    let text_a = read(path_a)?;
    let text_b = read(path_b)?;
    let bench_a = JsonValue::parse(&text_a)
        .ok()
        .filter(|v| v.get("kernels").is_some());
    let bench_b = JsonValue::parse(&text_b)
        .ok()
        .filter(|v| v.get("kernels").is_some());
    match (bench_a, bench_b) {
        (Some(a), Some(b)) => diff_bench(&a, &b),
        _ => diff_ledger(path_a, &text_a, path_b, &text_b),
    }
}

fn diff_bench(a: &JsonValue, b: &JsonValue) -> Result<ExitCode, String> {
    let rows = |v: &JsonValue| -> Vec<JsonValue> {
        v.get("kernels")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::to_vec)
            .unwrap_or_default()
    };
    let rows_a = rows(a);
    let rows_b = rows(b);
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    let mut unchanged = 0usize;
    for row_a in &rows_a {
        let key = row_key(row_a);
        let Some(row_b) = rows_b.iter().find(|r| row_key(r) == key) else {
            println!("MISSING  {key}: row absent from the second file");
            regressions += 1;
            continue;
        };
        let mut row_regressed = false;
        let mut row_changed = false;
        // Grown graph facts are regressions; shrunken ones improvements.
        for fact in ["peak_configs", "edges", "approx_bytes_per_config"] {
            let (va, vb) = (int(row_a, fact), int(row_b, fact));
            if va != vb {
                row_changed = true;
                let dir = if vb > va { "REGRESS" } else { "improve" };
                println!("{dir:7}  {key}: {fact} {va} -> {vb}");
                row_regressed |= vb > va;
            }
        }
        let trunc = |r: &JsonValue| r.get("truncated").and_then(JsonValue::as_bool);
        if trunc(row_a) != trunc(row_b) {
            row_changed = true;
            let worse = trunc(row_b) == Some(true);
            println!(
                "{}  {key}: truncated {:?} -> {:?}",
                if worse { "REGRESS" } else { "improve" },
                trunc(row_a),
                trunc(row_b)
            );
            row_regressed |= worse;
        }
        // A flipped verdict is always a regression: the answer is supposed
        // to be deterministic.
        let holds = |r: &JsonValue| r.get("holds").map(JsonValue::as_bool);
        if holds(row_a) != holds(row_b) {
            row_changed = true;
            row_regressed = true;
            println!(
                "REGRESS  {key}: holds {:?} -> {:?}",
                holds(row_a).flatten(),
                holds(row_b).flatten()
            );
        }
        // Timing: informational only (machine-dependent, never a gate).
        let (ta, tb) = (num(row_a, "median_ns"), num(row_b, "median_ns"));
        if ta > 0.0 && tb > 0.0 && (tb / ta > 1.25 || ta / tb > 1.25) {
            println!(
                "  note   {key}: median {} -> {} ({:+.0}%)",
                ms(ta),
                ms(tb),
                100.0 * (tb - ta) / ta
            );
        }
        if row_regressed {
            regressions += 1;
        } else if row_changed {
            improvements += 1;
        } else {
            unchanged += 1;
        }
    }
    for row_b in &rows_b {
        if !rows_a.iter().any(|r| row_key(r) == row_key(row_b)) {
            println!("  new    {}: row only in the second file", row_key(row_b));
        }
    }
    println!(
        "diff: {} rows compared, {unchanged} unchanged, {improvements} improved, \
         {regressions} regressed",
        rows_a.len()
    );
    Ok(if regressions == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Ledger mode: compare the *last* record of each file (typically two runs
/// of the same spec) on the deterministic graph facts.
fn diff_ledger(path_a: &str, text_a: &str, path_b: &str, text_b: &str) -> Result<ExitCode, String> {
    let last = |path: &str, text: &str| -> Result<JsonValue, String> {
        let line = text
            .lines()
            .rfind(|l| !l.trim().is_empty())
            .ok_or_else(|| format!("{path}: empty ledger"))?;
        JsonValue::parse(line).map_err(|e| format!("{path}: {e}"))
    };
    let a = last(path_a, text_a)?;
    let b = last(path_b, text_b)?;
    let hash = |v: &JsonValue| {
        v.get("spec_hash")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string()
    };
    if hash(&a) != hash(&b) {
        println!(
            "note: different specs ({} vs {}) — facts are not comparable as a regression",
            hash(&a),
            hash(&b)
        );
    }
    let facts = |v: &JsonValue, key: &str| v.get("metrics").map_or(0, |m| int(m, key));
    let mut regressions = 0usize;
    for fact in ["configs", "edges", "peak_bytes"] {
        let (va, vb) = (facts(&a, fact), facts(&b, fact));
        if va != vb {
            let dir = if vb > va { "REGRESS" } else { "improve" };
            println!("{dir:7}  {fact}: {va} -> {vb}");
            regressions += usize::from(vb > va && hash(&a) == hash(&b));
        } else {
            println!("   same  {fact}: {va}");
        }
    }
    let truncated = |v: &JsonValue| {
        v.get("metrics")
            .and_then(|m| m.get("truncation"))
            .is_some_and(|t| !t.is_null())
    };
    if !truncated(&a) && truncated(&b) {
        println!("REGRESS  run now truncates");
        regressions += 1;
    }
    println!("diff: {regressions} regressions");
    Ok(if regressions == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
