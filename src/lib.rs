//! # subconsensus
//!
//! An executable reproduction of **“Deterministic Objects: Life Beyond
//! Consensus”** (Afek, Ellen, Gafni — PODC 2016): deterministic shared
//! objects whose synchronization power the consensus hierarchy fails to
//! capture, together with the full shared-memory substrate they live in.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sim`] — the asynchronous shared-memory simulator (objects,
//!   protocols, schedulers, histories, linearizability checking);
//! * [`objects`] — the object zoo (registers … compare-and-swap,
//!   set-consensus objects);
//! * [`protocols`] — executable wait-free algorithms (snapshot, renaming,
//!   adopt–commit, tournament, universal construction, …);
//! * [`tasks`] — task specifications and the solvability harness;
//! * [`core`] — the paper's contribution: the deterministic grouped family
//!   and the hierarchy analytics;
//! * [`modelcheck`] — exhaustive exploration, agreement bounds, valency;
//! * [`rt`] — the same objects on real hardware atomics;
//! * [`wrn`] — extension: the resolution of the paper's open question at
//!   consensus level 1 (Write-and-Read-Next objects).
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use subconsensus::core::GroupedObject;
//! use subconsensus::protocols::ProposeDecide;
//! use subconsensus::sim::{run, FirstOutcome, Protocol, RoundRobin, RunOptions, SystemBuilder, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four processes solve 2-set consensus with one deterministic O_{2,1}.
//! let mut b = SystemBuilder::new();
//! let obj = b.add_object(GroupedObject::for_level(2, 1));
//! let p: Arc<dyn Protocol> = Arc::new(ProposeDecide::new(obj));
//! b.add_processes(p, (1..=4).map(|v| Value::Int(v)));
//! let out = run(&b.build(), &mut RoundRobin::new(), &mut FirstOutcome, &RunOptions::default())?;
//! assert!(out.decided_values().len() <= 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use subconsensus_core as core;
pub use subconsensus_modelcheck as modelcheck;
pub use subconsensus_objects as objects;
pub use subconsensus_protocols as protocols;
pub use subconsensus_rt as rt;
pub use subconsensus_sim as sim;
pub use subconsensus_tasks as tasks;
pub use subconsensus_wrn as wrn;
